// scalewall_node roles: deployable processes speaking scalewall::net.
//
// A local cluster is one ProxyNode plus N ServerNodes, each a real
// process (or an in-process instance in tests) with an EpollTransport:
//
//   client --kClientQuery--> proxy --kSubqueryRequest--> server[p % N]
//
// Servers host the partitions the deterministic dataset assigns them
// and answer subqueries by scanning real bricks
// (TablePartition::Execute). The proxy fans a client query out to every
// partition's host, merges the partial aggregation states in ascending
// partition order — the coordinator's merge order — and returns
// materialized rows. Because the scan, merge and materialization code
// is shared with the sim engine and the wire codecs are lossless, the
// rows are byte-identical to an oracle run and to a sim-transport
// Deployment over the same seed.
//
// Requests may carry a plan (DESIGN.md §15): a join strategy against
// the replicated "product_dim" table (replicated / broadcast snapshots
// / shuffle via kShuffleMapRequest) and a merge topology (flat, or a
// k-ary aggregation tree of kTreeMergeRequest hops where servers merge
// their subtree's partials — forwarding remote leaves to peers — before
// the proxy folds the few subtree results). Every topology folds in
// ascending partition order, so results stay byte-identical wherever
// the aggregation states are exact.
//
// The protocol logic lives in transport-agnostic cores (ServerCore,
// ProxyCore) that speak only net::Transport: the deployable nodes wrap
// them around an EpollTransport, and tests run the *same* cores over a
// SimTransport to assert that a real-socket run and a sim run of one
// query produce byte-identical canonical trace trees and profiles.
//
// Telemetry plane: when a client query opts into tracing/profiling, the
// proxy records a root span, sends a trace-context block on every
// subquery hop, and each server returns its spans as a wire span batch
// which the proxy grafts (TraceSink::Graft) under the issuing span —
// one stitched trace tree per query in the proxy's sink, regardless of
// how many processes did the work. From the stitched tree the proxy
// derives an obs::QueryProfile, feeds the slow-query ring, and (on
// request.profile) ships the rendered profile and tree to the client.

#ifndef SCALEWALL_NODE_NODE_H_
#define SCALEWALL_NODE_NODE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cubrick/planner.h"
#include "cubrick/request.h"
#include "cubrick/wire.h"
#include "net/epoll_transport.h"
#include "net/http_admin.h"
#include "net/telemetry.h"
#include "node/dataset.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace scalewall::node {

struct NodeOptions {
  std::string listen = "127.0.0.1:0";  // port 0 picks a free port
  uint32_t server_id = 0;              // ServerNode: which server this is
  uint32_t num_servers = 1;            // cluster size (partition placement)
  DatasetOptions dataset;
  net::EpollTransportOptions transport;
  // Peer name -> address ("s0" -> "ip:port"). The proxy needs every
  // server; servers need their peers too once tree aggregation is in
  // play (an aggregator forwards remote leaves of its subtree as
  // subqueries). Empty on a server = tree-merge requests whose subtree
  // spans other servers fail with kFailedPrecondition.
  std::map<std::string, std::string> peer_addresses;
  // Proxy slow-query ring (obs::SlowQueryLog). Default thresholds are
  // zero = capture nothing automatically; scalewall_node sets a latency
  // threshold via --slow-query-micros.
  obs::SlowQueryLogOptions slow_log;
};

// Transport-agnostic server-side protocol logic: hosts the partitions
// `ServerForPartition` assigns to `server_id` and serves
// kSubqueryRequest (with replicated or shipped-snapshot joins),
// kTreeMergeRequest (merge a subtree of partials, forwarding remote
// leaves over `transport`), kShuffleMapRequest (stage 2 of a shuffle
// join against the local dim replica) and kEpochRequest. When a
// subquery carries a trace-context block, the scan is recorded into a
// per-request TraceSink and shipped back as a span batch.
class ServerCore {
 public:
  explicit ServerCore(NodeOptions options,
                      obs::MetricsRegistry* metrics = nullptr,
                      net::Transport* transport = nullptr);

  // Builds the hosted partitions. Must precede Handle.
  Status LoadPartitions();

  Result<net::Message> Handle(const net::Message& request);

  size_t num_partitions_hosted() const { return partitions_.size(); }

 private:
  NodeOptions options_;
  net::Transport* transport_;  // null = cannot forward tree leaves
  net::TelemetryDecodeCounters decode_errors_;
  cubrick::ReplicatedTable dim_;  // local "product_dim" replica
  std::map<uint32_t, cubrick::TablePartition> partitions_;
};

// Transport-agnostic proxy-side protocol logic: accepts kClientQuery
// and executes the request's plan — join strategy (kAuto degrades to
// kReplicated: the node proxy keeps no cost model) and merge topology
// (flat fan-out, or a k-ary aggregation tree of kTreeMergeRequest hops
// when the request pins merge_fanin >= 2) — over `transport` (peers
// "s0".."s<N-1>"), stitches returned span batches, merges in ascending
// partition order and materializes. `transport` must outlive the core.
class ProxyCore {
 public:
  ProxyCore(NodeOptions options, net::Transport* transport,
            obs::MetricsRegistry* metrics = nullptr);

  Result<net::Message> Handle(const net::Message& request);

  // The proxy's root sink: one stitched trace per traced client query.
  obs::TraceSink& trace_sink() { return sink_; }
  const obs::TraceSink& trace_sink() const { return sink_; }
  obs::SlowQueryLog& slow_log() { return slow_log_; }

 private:
  // Flat fan-out of `exec_query` (one subquery per partition, all in
  // flight at once), folding partials into `merged` in ascending
  // partition order. `root` non-null = record "subquery pN" spans under
  // it and graft the servers' span batches. `dims` non-empty = ship the
  // broadcast snapshots with every subquery.
  Status FanOutFlat(const cubrick::QueryRequest& request,
                    const cubrick::Query& exec_query,
                    const std::vector<cubrick::ReplicatedTable>& dims,
                    SimDuration budget, obs::TraceContext* root,
                    int64_t start_micros, cubrick::QueryResult* merged,
                    std::set<uint32_t>* servers);
  // Tree fan-out: partitions chunk contiguously by TreeChunkSize, each
  // multi-partition chunk goes to its first partition's host as a
  // kTreeMergeRequest (single-partition chunks stay plain subqueries),
  // and chunk results fold in ascending chunk order — the same fixed
  // ascending-partition order the flat merge uses.
  Status FanOutTree(const cubrick::QueryRequest& request,
                    const cubrick::Query& exec_query,
                    const std::vector<cubrick::ReplicatedTable>& dims,
                    int fanin, SimDuration budget,
                    cubrick::QueryResult* merged, std::set<uint32_t>* servers);
  // Shuffle stages 2+3: bucket stage-1 groups by their raw join keys,
  // send each bucket to server (bucket % num_servers) for dim mapping,
  // fold mapped buckets in ascending bucket order.
  Status ShuffleMap(const cubrick::Query& query,
                    const cubrick::QueryResult& scanned,
                    cubrick::QueryResult* mapped, std::set<uint32_t>* servers);

  NodeOptions options_;
  net::Transport* transport_;
  obs::TraceSink sink_;
  obs::SlowQueryLog slow_log_;
  net::TelemetryDecodeCounters decode_errors_;
  obs::Counter queries_;
  obs::HistogramMetric query_latency_ms_;
};

// Deployable server process: ServerCore behind an EpollTransport.
class ServerNode {
 public:
  explicit ServerNode(NodeOptions options,
                      obs::MetricsRegistry* metrics = nullptr);
  ~ServerNode();

  Status Start();
  void Stop();

  // Serves /metrics, /healthz and /traces on `address`, multiplexed on
  // the transport's event loop. Call after Start.
  Status StartAdmin(const std::string& address);
  int admin_port() const;

  int port() const { return transport_.listen_port(); }
  net::EpollTransport& transport() { return transport_; }
  size_t num_partitions_hosted() const {
    return core_.num_partitions_hosted();
  }

 private:
  obs::MetricsRegistry* metrics_;
  std::string listen_;
  std::map<std::string, std::string> peer_addresses_;
  ServerCore core_;
  net::EpollTransport transport_;
  std::unique_ptr<net::HttpAdminServer> admin_;
};

// Deployable proxy process: ProxyCore behind an EpollTransport.
// Handlers run on worker threads so the blocking fan-out calls never
// stall the proxy's own event loop.
class ProxyNode {
 public:
  ProxyNode(NodeOptions options,
            std::map<std::string, std::string> peer_addresses,
            obs::MetricsRegistry* metrics = nullptr);
  ~ProxyNode();

  Status Start();
  void Stop();

  // Serves /metrics, /healthz, /traces and /slowlog on `address`.
  Status StartAdmin(const std::string& address);
  int admin_port() const;

  int port() const { return transport_.listen_port(); }
  net::EpollTransport& transport() { return transport_; }
  ProxyCore& core() { return core_; }

 private:
  obs::MetricsRegistry* metrics_;
  std::string listen_;
  std::map<std::string, std::string> peer_addresses_;
  net::EpollTransport transport_;
  ProxyCore core_;
  std::unique_ptr<net::HttpAdminServer> admin_;
};

// Client side: submits `request` to the proxy at peer `proxy` (a mapped
// name or "ip:port") and returns the materialized rows envelope.
Result<cubrick::wire::ClientRowsEnvelope> SubmitClientQuery(
    net::Transport& transport, const std::string& proxy,
    const cubrick::QueryRequest& request);

}  // namespace scalewall::node

#endif  // SCALEWALL_NODE_NODE_H_
