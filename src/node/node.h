// scalewall_node roles: deployable processes speaking scalewall::net.
//
// A local cluster is one ProxyNode plus N ServerNodes, each a real
// process (or an in-process instance in tests) with an EpollTransport:
//
//   client --kClientQuery--> proxy --kSubqueryRequest--> server[p % N]
//
// Servers host the partitions the deterministic dataset assigns them
// and answer subqueries by scanning real bricks
// (TablePartition::Execute). The proxy fans a client query out to every
// partition's host, merges the partial aggregation states in ascending
// partition order — the coordinator's merge order — and returns
// materialized rows. Because the scan, merge and materialization code
// is shared with the sim engine and the wire codecs are lossless, the
// rows are byte-identical to an oracle run and to a sim-transport
// Deployment over the same seed.

#ifndef SCALEWALL_NODE_NODE_H_
#define SCALEWALL_NODE_NODE_H_

#include <map>
#include <memory>
#include <string>

#include "cubrick/request.h"
#include "cubrick/wire.h"
#include "net/epoll_transport.h"
#include "node/dataset.h"

namespace scalewall::node {

struct NodeOptions {
  std::string listen = "127.0.0.1:0";  // port 0 picks a free port
  uint32_t server_id = 0;              // ServerNode: which server this is
  uint32_t num_servers = 1;            // cluster size (partition placement)
  DatasetOptions dataset;
  net::EpollTransportOptions transport;
};

// Hosts the partitions `ServerForPartition` assigns to `server_id` and
// serves kSubqueryRequest (+ kEpochRequest for completeness).
class ServerNode {
 public:
  explicit ServerNode(NodeOptions options,
                      obs::MetricsRegistry* metrics = nullptr);
  ~ServerNode();

  Status Start();
  void Stop();

  int port() const { return transport_.listen_port(); }
  net::EpollTransport& transport() { return transport_; }
  size_t num_partitions_hosted() const { return partitions_.size(); }

 private:
  Result<net::Message> Handle(const net::Message& request);

  NodeOptions options_;
  net::EpollTransport transport_;
  std::map<uint32_t, cubrick::TablePartition> partitions_;
};

// Accepts kClientQuery, fans out one subquery per partition to its
// host (peers "s0".."s<N-1>", mapped via `peer_addresses`), merges and
// materializes. Handlers run on worker threads so the blocking fan-out
// calls never stall the proxy's own event loop.
class ProxyNode {
 public:
  ProxyNode(NodeOptions options,
            std::map<std::string, std::string> peer_addresses,
            obs::MetricsRegistry* metrics = nullptr);
  ~ProxyNode();

  Status Start();
  void Stop();

  int port() const { return transport_.listen_port(); }
  net::EpollTransport& transport() { return transport_; }

 private:
  Result<net::Message> Handle(const net::Message& request);

  NodeOptions options_;
  std::map<std::string, std::string> peer_addresses_;
  net::EpollTransport transport_;
};

// Client side: submits `request` to the proxy at peer `proxy` (a mapped
// name or "ip:port") and returns the materialized rows envelope.
Result<cubrick::wire::ClientRowsEnvelope> SubmitClientQuery(
    net::Transport& transport, const std::string& proxy,
    const cubrick::QueryRequest& request);

}  // namespace scalewall::node

#endif  // SCALEWALL_NODE_NODE_H_
