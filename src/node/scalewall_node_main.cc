// scalewall_node: a deployable node of a real scalewall cluster.
//
// Roles:
//   --role=server  --listen=ip:port --server-id=K --num-servers=N
//                  [--peers=s0=ip:port,...]
//       Hosts the deterministic dataset's partitions assigned to server
//       K and serves subqueries over real sockets. Peers are needed
//       once tree aggregation is in play: an aggregator forwards the
//       remote leaves of its subtree to the servers that host them.
//   --role=proxy   --listen=ip:port --peers=s0=ip:port,s1=ip:port,...
//                  --num-servers=N
//       Accepts client queries, fans them out and merges.
//   --role=client  --connect=ip:port --sql='SELECT ...'
//                  [--join-strategy=auto|replicated|broadcast|shuffle]
//                  [--merge-fanin=K]
//       Parses the SQL against the dataset catalog (JOIN product_dim
//       resolves there), submits it to the proxy and prints the rows
//       (retrying while the cluster warms up). --join-strategy pins the
//       plan's join strategy; --merge-fanin >= 2 requests a k-ary
//       aggregation tree instead of the flat fan-in merge.
//   --role=oracle  --sql='SELECT ...'
//       Executes the same query in-process against the same dataset and
//       prints rows in the same format — `diff` against the client's
//       output is a bit-level result comparison.
//
// Dataset knobs shared by all roles: --seed --rows --partitions.
// Telemetry: --admin=ip:port serves /metrics, /healthz and /traces
// (plus /slowlog on the proxy) from the node's own event loop;
// --slow-query-micros=T arms the proxy's slow-query ring; the client's
// --profile prints the stitched per-query profile and trace to stderr.
// scripts/run_local_cluster.sh drives a 1-proxy + 2-server cluster.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "cubrick/sql.h"
#include "node/node.h"
#include "obs/metrics_registry.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

// --flag=value (or --flag value) extraction from argv.
struct Args {
  std::map<std::string, std::string> values;

  static Args Parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        args.values[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.values[arg] = argv[++i];
      } else {
        args.values[arg] = "1";
      }
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::strtoll(it->second.c_str(),
                                                        nullptr, 10);
  }
};

scalewall::node::NodeOptions NodeOptionsFrom(const Args& args) {
  scalewall::node::NodeOptions options;
  options.listen = args.Get("listen", "127.0.0.1:0");
  options.server_id = static_cast<uint32_t>(args.GetInt("server-id", 0));
  options.num_servers = static_cast<uint32_t>(args.GetInt("num-servers", 1));
  options.dataset.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  options.dataset.num_partitions =
      static_cast<uint32_t>(args.GetInt("partitions", 8));
  options.dataset.num_rows = static_cast<uint64_t>(args.GetInt("rows", 20000));
  // Proxy slow-query ring: capture queries at/above the threshold
  // (0 disables automatic capture; \curl /slowlog shows the ring).
  options.slow_log.latency_threshold_micros =
      args.GetInt("slow-query-micros", 0);
  return options;
}

std::map<std::string, std::string> ParsePeers(const std::string& spec) {
  // "s0=127.0.0.1:7101,s1=127.0.0.1:7102"
  std::map<std::string, std::string> peers;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(start, comma - start);
    auto eq = entry.find('=');
    if (eq != std::string::npos) {
      peers[entry.substr(0, eq)] = entry.substr(eq + 1);
    }
    start = comma + 1;
  }
  return peers;
}

void WaitForSignal() {
  while (!g_stop) usleep(50 * 1000);
}

int RunServer(const Args& args) {
  scalewall::obs::MetricsRegistry metrics;
  scalewall::node::NodeOptions options = NodeOptionsFrom(args);
  options.peer_addresses = ParsePeers(args.Get("peers", ""));
  scalewall::node::ServerNode server(options, &metrics);
  auto status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string admin = args.Get("admin", "");
  if (!admin.empty()) {
    status = server.StartAdmin(admin);
    if (!status.ok()) {
      std::fprintf(stderr, "server admin: %s\n", status.ToString().c_str());
      server.Stop();
      return 1;
    }
  }
  std::fprintf(stderr, "server %lld listening on port %d (%zu partitions)",
               static_cast<long long>(args.GetInt("server-id", 0)),
               server.port(), server.num_partitions_hosted());
  if (!admin.empty()) std::fprintf(stderr, ", admin %d", server.admin_port());
  std::fprintf(stderr, "\n");
  WaitForSignal();
  server.Stop();
  return 0;
}

int RunProxy(const Args& args) {
  scalewall::obs::MetricsRegistry metrics;
  scalewall::node::ProxyNode proxy(NodeOptionsFrom(args),
                                   ParsePeers(args.Get("peers", "")),
                                   &metrics);
  auto status = proxy.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "proxy: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string admin = args.Get("admin", "");
  if (!admin.empty()) {
    status = proxy.StartAdmin(admin);
    if (!status.ok()) {
      std::fprintf(stderr, "proxy admin: %s\n", status.ToString().c_str());
      proxy.Stop();
      return 1;
    }
  }
  std::fprintf(stderr, "proxy listening on port %d", proxy.port());
  if (!admin.empty()) std::fprintf(stderr, ", admin %d", proxy.admin_port());
  std::fprintf(stderr, "\n");
  WaitForSignal();
  proxy.Stop();
  return 0;
}

int RunClient(const Args& args) {
  const std::string sql = args.Get("sql", "");
  if (sql.empty()) {
    std::fprintf(stderr, "client: --sql required\n");
    return 2;
  }
  auto query = scalewall::cubrick::ParseQuery(
      sql, scalewall::node::DatasetSchema(),
      &scalewall::node::DatasetCatalog());
  if (!query.ok()) {
    std::fprintf(stderr, "client: %s\n", query.status().ToString().c_str());
    return 2;
  }
  scalewall::cubrick::QueryRequest request(*query);
  request.deadline = args.GetInt("deadline-ms", 0) * 1000;
  const std::string strategy = args.Get("join-strategy", "auto");
  if (strategy == "replicated") {
    request.join_strategy = scalewall::cubrick::JoinStrategy::kReplicated;
  } else if (strategy == "broadcast") {
    request.join_strategy = scalewall::cubrick::JoinStrategy::kBroadcast;
  } else if (strategy == "shuffle") {
    request.join_strategy = scalewall::cubrick::JoinStrategy::kShuffle;
  } else if (strategy != "auto") {
    std::fprintf(stderr, "client: unknown --join-strategy=%s\n",
                 strategy.c_str());
    return 2;
  }
  request.merge_fanin = static_cast<int>(args.GetInt("merge-fanin", 0));
  // --profile: the proxy ships its rendered per-query profile and
  // stitched trace tree back with the rows. Printed to stderr so stdout
  // stays byte-comparable with the oracle role.
  request.profile = args.GetInt("profile", 0) != 0;

  scalewall::net::EpollTransport transport;
  if (!transport.Start()) {
    std::fprintf(stderr, "client: event loop failed\n");
    return 1;
  }
  transport.MapPeer("proxy", args.Get("connect", "127.0.0.1:7100"));
  // The cluster may still be binding its ports; retry briefly.
  const int attempts = static_cast<int>(args.GetInt("retries", 50));
  scalewall::Status last = scalewall::Status::Unavailable("not attempted");
  for (int i = 0; i < attempts; ++i) {
    auto rows =
        scalewall::node::SubmitClientQuery(transport, "proxy", request);
    if (rows.ok()) {
      std::fputs(scalewall::node::FormatResultRows(rows->rows).c_str(),
                 stdout);
      if (!rows->profile_text.empty()) {
        std::fprintf(stderr, "%s", rows->profile_text.c_str());
      }
      if (!rows->trace_text.empty()) {
        std::fprintf(stderr, "%s", rows->trace_text.c_str());
      }
      transport.Stop();
      return 0;
    }
    last = rows.status();
    usleep(200 * 1000);
  }
  std::fprintf(stderr, "client: %s\n", last.ToString().c_str());
  transport.Stop();
  return 1;
}

int RunOracle(const Args& args) {
  const std::string sql = args.Get("sql", "");
  if (sql.empty()) {
    std::fprintf(stderr, "oracle: --sql required\n");
    return 2;
  }
  auto query = scalewall::cubrick::ParseQuery(
      sql, scalewall::node::DatasetSchema(),
      &scalewall::node::DatasetCatalog());
  if (!query.ok()) {
    std::fprintf(stderr, "oracle: %s\n", query.status().ToString().c_str());
    return 2;
  }
  auto rows = scalewall::node::ExecuteLocal(NodeOptionsFrom(args).dataset,
                                            *query);
  if (!rows.ok()) {
    std::fprintf(stderr, "oracle: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::fputs(scalewall::node::FormatResultRows(*rows).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  Args args = Args::Parse(argc, argv);
  const std::string role = args.Get("role", "");
  if (role == "server") return RunServer(args);
  if (role == "proxy") return RunProxy(args);
  if (role == "client") return RunClient(args);
  if (role == "oracle") return RunOracle(args);
  std::fprintf(stderr,
               "usage: scalewall_node --role=server|proxy|client|oracle "
               "[--listen=ip:port] [--peers=s0=ip:port,...] "
               "[--connect=ip:port] [--sql='SELECT ...'] [--server-id=K] "
               "[--num-servers=N] [--seed=S] [--rows=R] [--partitions=P] "
               "[--join-strategy=auto|replicated|broadcast|shuffle] "
               "[--merge-fanin=K] [--admin=ip:port] "
               "[--slow-query-micros=T] [--profile]\n");
  return 2;
}
