#include "obs/metrics_registry.h"

#include <algorithm>
#include <sstream>

namespace scalewall::obs {

namespace {

MetricLabels Normalize(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

void EmitSeriesName(std::ostringstream& out, const std::string& name,
                    const MetricLabels& labels,
                    const char* extra_key = nullptr,
                    const char* extra_value = nullptr) {
  out << name;
  if (!labels.empty() || extra_key != nullptr) {
    out << "{";
    bool first = true;
    for (const auto& [key, value] : labels) {
      if (!first) out << ",";
      out << key << "=\"" << value << "\"";
      first = false;
    }
    if (extra_key != nullptr) {
      if (!first) out << ",";
      out << extra_key << "=\"" << extra_value << "\"";
    }
    out << "}";
  }
}

}  // namespace

Counter MetricsRegistry::GetCounter(const std::string& name,
                                    MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = series_[SeriesKey{name, Normalize(std::move(labels))}];
  series.kind = Series::Kind::kCounter;
  return series.counter;
}

Gauge MetricsRegistry::GetGauge(const std::string& name, MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = series_[SeriesKey{name, Normalize(std::move(labels))}];
  series.kind = Series::Kind::kGauge;
  return series.gauge;
}

HistogramMetric MetricsRegistry::GetHistogram(const std::string& name,
                                              MetricLabels labels,
                                              double min_value) {
  std::lock_guard<std::mutex> lock(mu_);
  SeriesKey key{name, Normalize(std::move(labels))};
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(std::move(key), Series{}).first;
    it->second.histogram = HistogramMetric(min_value);
  }
  it->second.kind = Series::Kind::kHistogram;
  return it->second.histogram;
}

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [key, series] : series_) {
    switch (series.kind) {
      case Series::Kind::kCounter:
        EmitSeriesName(out, key.name, key.labels);
        out << " " << series.counter.load() << "\n";
        break;
      case Series::Kind::kGauge:
        EmitSeriesName(out, key.name, key.labels);
        out << " " << series.gauge.value() << "\n";
        break;
      case Series::Kind::kHistogram: {
        for (const auto& [q, qname] :
             {std::pair<double, const char*>{0.5, "0.5"},
              std::pair<double, const char*>{0.99, "0.99"},
              std::pair<double, const char*>{0.999, "0.999"}}) {
          EmitSeriesName(out, key.name, key.labels, "quantile", qname);
          out << " " << series.histogram.Quantile(q) << "\n";
        }
        EmitSeriesName(out, key.name + "_count", key.labels);
        out << " " << series.histogram.count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::ExportPrometheus() const {
  // The `le` ladder, in the unit the histogram was fed (milliseconds for
  // every latency series in this codebase): 1-2-5 steps over 8 decades.
  static constexpr double kBuckets[] = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,  0.2,  0.5,  1.0,
      2.0,   5.0,   10.0,  20.0, 50.0, 100,  200,  500,  1000, 2000,
      5000,  10000, 20000, 50000};
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  const std::string* last_type_name = nullptr;
  auto type_line = [&](const std::string& name, const char* type) {
    // One # TYPE header per metric name (series of one name are
    // contiguous: the map is sorted by name first).
    if (last_type_name != nullptr && *last_type_name == name) return;
    out << "# TYPE " << name << " " << type << "\n";
    last_type_name = &name;
  };
  for (const auto& [key, series] : series_) {
    switch (series.kind) {
      case Series::Kind::kCounter:
        type_line(key.name, "counter");
        EmitSeriesName(out, key.name, key.labels);
        out << " " << series.counter.load() << "\n";
        break;
      case Series::Kind::kGauge:
        type_line(key.name, "gauge");
        EmitSeriesName(out, key.name, key.labels);
        out << " " << series.gauge.value() << "\n";
        break;
      case Series::Kind::kHistogram: {
        type_line(key.name, "histogram");
        const Histogram snapshot = series.histogram.Snapshot();
        for (double upper : kBuckets) {
          std::ostringstream le;
          le << upper;
          EmitSeriesName(out, key.name + "_bucket", key.labels, "le",
                         le.str().c_str());
          out << " " << snapshot.CumulativeLessEqual(upper) << "\n";
        }
        EmitSeriesName(out, key.name + "_bucket", key.labels, "le", "+Inf");
        out << " " << snapshot.count() << "\n";
        EmitSeriesName(out, key.name + "_sum", key.labels);
        out << " " << snapshot.sum() << "\n";
        EmitSeriesName(out, key.name + "_count", key.labels);
        out << " " << snapshot.count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::vector<std::string> MetricsRegistry::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [key, series] : series_) {
    if (names.empty() || names.back() != key.name) names.push_back(key.name);
  }
  return names;
}

size_t MetricsRegistry::num_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

}  // namespace scalewall::obs
