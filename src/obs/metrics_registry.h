// Unified metrics registry (scalewall::obs).
//
// Before this module, proxy, server and SM each grew an ad-hoc `Stats`
// struct with divergent field conventions, and core::ExportMetricsText
// hand-rendered each one. The registry unifies them: a component asks
// for a Counter / Gauge / HistogramMetric handle by (name, labels) and
// the registry renders every registered series in one sorted
// Prometheus-style text block.
//
// Handles are value types over shared cells: a default-constructed
// handle owns a private standalone cell, so Stats structs stay directly
// constructible in unit tests with no registry attached — registration
// just makes the same cell visible to ExportText. Counter mimics enough
// of int64/std::atomic<int64_t> (operator++, +=, fetch_add, load,
// implicit conversion) that existing call sites and tests compile
// unchanged after migration.

#ifndef SCALEWALL_OBS_METRICS_REGISTRY_H_
#define SCALEWALL_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace scalewall::obs {

// Label sets are small (0-2 pairs); kept sorted by key for identity.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Monotonic integer counter. Thread-safe; all operations are relaxed
// atomics — counters are statistics, never synchronization.
class Counter {
 public:
  Counter() : cell_(std::make_shared<std::atomic<int64_t>>(0)) {}

  void Add(int64_t delta) { cell_->fetch_add(delta, std::memory_order_relaxed); }
  Counter& operator++() {
    Add(1);
    return *this;
  }
  Counter& operator+=(int64_t delta) {
    Add(delta);
    return *this;
  }
  int64_t fetch_add(int64_t delta,
                    std::memory_order order = std::memory_order_relaxed) {
    return cell_->fetch_add(delta, order);
  }
  int64_t load(std::memory_order order = std::memory_order_relaxed) const {
    return cell_->load(order);
  }
  int64_t value() const { return load(); }
  operator int64_t() const { return load(); }  // NOLINT(runtime/explicit)

 private:
  friend class MetricsRegistry;
  std::shared_ptr<std::atomic<int64_t>> cell_;
};

// Last-write-wins double value (queue depth, utilization, ...).
class Gauge {
 public:
  Gauge() : cell_(std::make_shared<std::atomic<double>>(0.0)) {}

  void Set(double value) { cell_->store(value, std::memory_order_relaxed); }
  double value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::shared_ptr<std::atomic<double>> cell_;
};

// Registry-visible wrapper over common::Histogram (log-bucketed).
// Thread-safe via an internal mutex; Add is rare (per-query, not
// per-row), so a mutex is fine.
class HistogramMetric {
 public:
  HistogramMetric() : cell_(std::make_shared<Cell>(0.001)) {}
  explicit HistogramMetric(double min_value)
      : cell_(std::make_shared<Cell>(min_value)) {}

  void Add(double value) {
    std::lock_guard<std::mutex> lock(cell_->mu);
    cell_->histogram.Add(value);
  }
  double Quantile(double q) const {
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->histogram.Quantile(q);
  }
  int64_t count() const {
    std::lock_guard<std::mutex> lock(cell_->mu);
    return static_cast<int64_t>(cell_->histogram.count());
  }
  // Consistent copy of the underlying histogram (bucket-level export).
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->histogram;
  }

 private:
  friend class MetricsRegistry;
  struct Cell {
    explicit Cell(double min_value) : histogram(min_value) {}
    mutable std::mutex mu;
    Histogram histogram;
  };
  std::shared_ptr<Cell> cell_;
};

// Name+labels -> shared cell. Getting the same (name, labels) twice
// returns handles over the same cell; distinct label sets are distinct
// series. ExportText renders all series sorted by (name, labels) as
//   name{k="v",...} value
// with counters as plain integers (matching the pre-registry exporter)
// and histograms as quantile series (0.5/0.99/0.999) plus a _count line.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge GetGauge(const std::string& name, MetricLabels labels = {});
  HistogramMetric GetHistogram(const std::string& name, MetricLabels labels = {},
                               double min_value = 0.001);

  std::string ExportText() const;

  // Full Prometheus text exposition of every registered series, with no
  // deployment-level derived lines — the standalone per-process export a
  // scalewall_node serves on /metrics. Counters and gauges render as
  // `name{labels} value` with `# TYPE` headers; histograms render as
  // real cumulative `_bucket{le="..."}` series over a fixed 1-2-5
  // ladder plus `_sum` and `_count` (quantile convenience lines are
  // ExportText's shorthand, not part of this format).
  std::string ExportPrometheus() const;

  // Sorted names of all registered series (metric-name lint, tests).
  std::vector<std::string> SeriesNames() const;

  size_t num_series() const;

 private:
  struct SeriesKey {
    std::string name;
    MetricLabels labels;
    bool operator<(const SeriesKey& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };
  struct Series {
    Counter counter;
    Gauge gauge;
    HistogramMetric histogram;
    enum class Kind { kCounter, kGauge, kHistogram } kind = Kind::kCounter;
  };

  mutable std::mutex mu_;
  std::map<SeriesKey, Series> series_;
};

}  // namespace scalewall::obs

#endif  // SCALEWALL_OBS_METRICS_REGISTRY_H_
