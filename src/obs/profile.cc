#include "obs/profile.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace scalewall::obs {

namespace {

int64_t TagInt(const SpanRecord& span, const char* key, int64_t fallback = 0) {
  for (const auto& [k, v] : span.tags) {
    if (k == key) return std::strtoll(v.c_str(), nullptr, 10);
  }
  return fallback;
}

const std::string* TagStr(const SpanRecord& span, const char* key) {
  for (const auto& [k, v] : span.tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t Dur(const SpanRecord& span) {
  return span.end > span.start ? span.end - span.start : 0;
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

QueryProfile BuildQueryProfile(const std::vector<SpanRecord>& spans) {
  QueryProfile profile;
  bool saw_attempt = false;
  for (const SpanRecord& span : spans) {
    if (span.parent == 0 && HasPrefix(span.name, "query ")) {
      profile.table = span.name.substr(6);
      profile.latency_micros = Dur(span);
      if (const std::string* s = TagStr(span, "status")) profile.status = *s;
      if (const std::string* s = TagStr(span, "tenant")) profile.tenant = *s;
      profile.attempts = static_cast<int>(TagInt(span, "attempts"));
      profile.fanout = static_cast<int>(TagInt(span, "fanout"));
      profile.deadline_micros = TagInt(span, "deadline");
      continue;
    }
    if (span.name == "admission queue") {
      profile.queue_wait_micros += Dur(span);
      continue;
    }
    if (HasPrefix(span.name, "attempt ")) {
      if (saw_attempt) ++profile.retries;
      saw_attempt = true;
      continue;
    }
    if (HasPrefix(span.name, "net ")) {
      profile.net_micros += Dur(span);
      continue;
    }
    if (span.name == "plan") {
      profile.has_plan = true;
      if (const std::string* s = TagStr(span, "strategy")) {
        profile.join_strategy = *s;
      }
      if (const std::string* s = TagStr(span, "merge")) {
        profile.merge_topology = *s;
      }
      profile.merge_fanin = static_cast<int>(TagInt(span, "fanin"));
      profile.tree_depth = static_cast<int>(TagInt(span, "depth"));
      continue;
    }
    if (span.name.find("hedge") != std::string::npos) {
      ++profile.hedges;
      continue;
    }
    if (HasPrefix(span.name, "tree merge ")) {
      // Subtree merges run on aggregator servers, NOT the coordinator:
      // they are deliberately kept out of merge_micros, whose shrinking
      // share under tree plans is the whole point of the topology.
      profile.tree_merge_micros += Dur(span);
      continue;
    }
    if (span.name == "merge") {
      profile.merge_micros += Dur(span);
      continue;
    }
    if (HasPrefix(span.name, "scan ")) {
      // Modeled scan time (sim coordinator): the real engine's partition
      // spans carry wall durations directly, but the simulator draws a
      // subquery's service time after the instantaneous in-memory scan
      // ran, and records it as a "scan pK" span instead.
      profile.scan_micros += Dur(span);
      continue;
    }
    if (HasPrefix(span.name, "partition ")) {
      SubqueryProfile sub;
      sub.name = span.name;
      sub.wall_micros = Dur(span);
      if (const std::string* s = TagStr(span, "server")) sub.server = *s;
      sub.rows_scanned = TagInt(span, "rows_scanned");
      sub.bricks_scanned = TagInt(span, "bricks");
      sub.bricks_rle_skipped = TagInt(span, "rle_skipped");
      sub.morsels = TagInt(span, "morsels");
      if (const std::string* s = TagStr(span, "cache_hit")) {
        sub.cache_hit = (*s == "true") ? 1 : 0;
      }
      profile.scan_micros += sub.wall_micros;
      profile.rows_scanned += sub.rows_scanned;
      profile.bricks_scanned += sub.bricks_scanned;
      profile.bricks_rle_skipped += sub.bricks_rle_skipped;
      profile.morsels += sub.morsels;
      if (sub.cache_hit == 1) ++profile.cache_hits;
      if (sub.cache_hit == 0) ++profile.cache_misses;
      profile.subqueries.push_back(std::move(sub));
      continue;
    }
  }
  std::sort(profile.subqueries.begin(), profile.subqueries.end(),
            [](const SubqueryProfile& a, const SubqueryProfile& b) {
              return a.name < b.name;
            });
  return profile;
}

std::string QueryProfile::CanonicalText() const {
  std::ostringstream out;
  out << "profile query=" << table << " status=" << status
      << " attempts=" << attempts << " fanout=" << fanout
      << " retries=" << retries << " hedges=" << hedges << "\n";
  if (has_plan) {
    // Only non-seed plans record a "plan" span, so seed-path canonical
    // output is unchanged — and stays comparable across old/new peers.
    out << "plan strategy=" << join_strategy << " merge=" << merge_topology;
    if (merge_fanin >= 2) {
      out << " fanin=" << merge_fanin << " depth=" << tree_depth;
    }
    out << "\n";
  }
  out << "work rows=" << rows_scanned << " bricks=" << bricks_scanned
      << " rle_skipped=" << bricks_rle_skipped << " morsels=" << morsels
      << " cache_hits=" << cache_hits << " cache_misses=" << cache_misses
      << "\n";
  for (const SubqueryProfile& sub : subqueries) {
    out << "subquery " << sub.name;
    if (!sub.server.empty()) out << " server=" << sub.server;
    out << " rows=" << sub.rows_scanned << " bricks=" << sub.bricks_scanned
        << " rle_skipped=" << sub.bricks_rle_skipped;
    out << " cache="
        << (sub.cache_hit < 0 ? "-" : (sub.cache_hit == 1 ? "hit" : "miss"));
    out << "\n";
  }
  return out.str();
}

std::string QueryProfile::Text() const {
  std::ostringstream out;
  out << CanonicalText();
  out << "time total_us=" << latency_micros
      << " queue_us=" << queue_wait_micros << " scan_us=" << scan_micros
      << " merge_us=" << merge_micros << " net_us=" << net_micros;
  if (tree_merge_micros > 0) out << " tree_merge_us=" << tree_merge_micros;
  if (deadline_micros > 0) {
    out << " deadline_us=" << deadline_micros << " burn="
        << static_cast<int64_t>(deadline_burn() * 100.0) << "%";
  }
  out << "\n";
  return out.str();
}

SlowQueryLog::SlowQueryLog(SlowQueryLogOptions options) : options_(options) {}

bool SlowQueryLog::MaybeCapture(const QueryProfile& profile) {
  const bool slow =
      options_.latency_threshold_micros > 0 &&
      profile.latency_micros >= options_.latency_threshold_micros;
  const bool burned = options_.deadline_burn_threshold > 0.0 &&
                      profile.deadline_micros > 0 &&
                      profile.deadline_burn() >= options_.deadline_burn_threshold;
  if (!slow && !burned) return false;
  if (options_.capacity == 0) return false;
  Capture(profile);
  return true;
}

void SlowQueryLog::Capture(QueryProfile profile) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.capacity == 0) return;
  while (ring_.size() >= options_.capacity) {
    ring_.pop_front();
    ++evicted_;
  }
  ring_.push_back(std::move(profile));
  ++captured_;
}

std::vector<QueryProfile> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.rbegin(), ring_.rend()};
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

int64_t SlowQueryLog::captured_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

int64_t SlowQueryLog::evicted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

}  // namespace scalewall::obs
