// Per-query profiles and the slow-query log (scalewall::obs).
//
// A QueryProfile is the digest an operator actually reads: where one
// query's time and work went — admission queue wait, per-subquery scan
// time, merge and network time, bricks scanned vs RLE-skipped, cache
// outcomes, retry/hedge activity, deadline-budget burn. It is built
// from a query's (stitched) span tree plus the counters the engine
// annotates onto those spans, so the same builder works on a
// single-process sim trace and on a cross-process trace assembled from
// wire span batches.
//
// Two renderings: Text() includes timings (operator-facing), and
// CanonicalText() is the deterministic subset — counters and structure
// only — which is byte-identical between a same-seed sim run and a
// real-socket run (timings obviously are not; they come from different
// clocks).
//
// SlowQueryLog is a bounded ring of captured profiles: every query
// whose latency exceeds a threshold (or which burned more than a
// configured fraction of its deadline budget) is kept, newest
// evicting oldest, so "what was slow in the last minutes" survives
// without tracing every query.

#ifndef SCALEWALL_OBS_PROFILE_H_
#define SCALEWALL_OBS_PROFILE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace scalewall::obs {

// One subquery's (partition scan's) share of the work.
struct SubqueryProfile {
  std::string name;    // span name, e.g. "partition ads/p3"
  std::string server;  // "server" tag when annotated
  int64_t wall_micros = 0;
  int64_t rows_scanned = 0;
  int64_t bricks_scanned = 0;
  int64_t bricks_rle_skipped = 0;
  int64_t morsels = 0;
  int cache_hit = -1;  // -1 unknown / not consulted, 0 miss, 1 hit
};

struct QueryProfile {
  std::string table;
  uint64_t trace_id = 0;
  std::string status = "OK";
  std::string tenant;
  int attempts = 0;
  int fanout = 0;

  // --- timings (wall or simulated micros; excluded from CanonicalText) ---
  int64_t latency_micros = 0;     // end-to-end, root span or caller-provided
  int64_t queue_wait_micros = 0;  // admission queue span
  int64_t scan_micros = 0;        // sum over partition spans
  int64_t merge_micros = 0;       // coordinator merge span(s)
  int64_t tree_merge_micros = 0;  // sum over "tree merge ..." spans —
                                  // merge work the tree moved OFF the
                                  // coordinator onto aggregator servers
  int64_t net_micros = 0;         // sum over "net ..." spans
  int64_t deadline_micros = 0;    // budget, 0 = none

  // --- executed plan (from the "plan" span; the coordinator emits one
  // --- only for non-seed plans, so has_plan=false means the seed
  // --- replicated/flat path ran and outputs stay byte-identical) ---
  bool has_plan = false;
  std::string join_strategy = "replicated";
  std::string merge_topology = "flat";
  int merge_fanin = 0;  // 0 = flat merge
  int tree_depth = 0;   // 0 = flat merge

  // --- deterministic work/outcome counters ---
  int64_t retries = 0;
  int64_t hedges = 0;
  int64_t rows_scanned = 0;
  int64_t bricks_scanned = 0;
  int64_t bricks_rle_skipped = 0;
  int64_t morsels = 0;
  int64_t cache_hits = 0;    // subquery-level validated hits
  int64_t cache_misses = 0;  // subquery-level misses

  std::vector<SubqueryProfile> subqueries;

  // Fraction of the deadline budget consumed (0 when no deadline).
  double deadline_burn() const {
    if (deadline_micros <= 0) return 0.0;
    return static_cast<double>(latency_micros) /
           static_cast<double>(deadline_micros);
  }

  // Operator-facing rendering, timings included.
  std::string Text() const;
  // Deterministic subset: structure and counters only, subqueries in
  // name order. Byte-identical across same-seed sim and real-socket
  // runs of the same query.
  std::string CanonicalText() const;
};

// Derives a profile from a canonicalized span tree (TraceSink::Spans).
// Recognizes the span vocabulary the query path records — "query ...",
// "admission queue", "attempt N", "plan", "net ...", "subquery ...",
// "partition <table>/pK", "scan pK" (the simulator's modeled scan time;
// real partition spans carry wall durations directly), "tree merge ..."
// (aggregator-side subtree merges), "merge" — and
// folds their tags (rows, bricks,
// rle_skipped, morsels, cache_hit, server, status). Unknown spans are
// ignored, so the builder tolerates partial traces (dropped spans,
// older peers that ship no telemetry).
QueryProfile BuildQueryProfile(const std::vector<SpanRecord>& spans);

struct SlowQueryLogOptions {
  size_t capacity = 32;
  // Capture when latency >= this (micros); 0 disables the latency rule.
  int64_t latency_threshold_micros = 0;
  // Capture when latency >= burn * deadline (for queries that carried a
  // deadline); 0 disables the burn rule.
  double deadline_burn_threshold = 0.0;
};

// Thread-safe bounded ring buffer of slow-query profiles.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowQueryLogOptions options = {});

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // Applies the thresholds; captures (and returns true) when either
  // rule fires. A zero-capacity log never captures.
  bool MaybeCapture(const QueryProfile& profile);
  // Unconditional capture (tests, explicit operator snapshots).
  void Capture(QueryProfile profile);

  // Newest first.
  std::vector<QueryProfile> Snapshot() const;

  size_t size() const;
  int64_t captured_total() const;
  int64_t evicted_total() const;
  const SlowQueryLogOptions& options() const { return options_; }

 private:
  const SlowQueryLogOptions options_;
  mutable std::mutex mu_;
  std::deque<QueryProfile> ring_;
  int64_t captured_ = 0;
  int64_t evicted_ = 0;
};

}  // namespace scalewall::obs

#endif  // SCALEWALL_OBS_PROFILE_H_
