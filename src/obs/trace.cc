#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

namespace scalewall::obs {

TraceContext TraceContext::Child(std::string name, SimTime start) const {
  if (!sink) return {};
  return sink->StartSpan(*this, std::move(name), start);
}

void TraceContext::Annotate(std::string key, std::string value) const {
  if (sink) sink->Annotate(*this, std::move(key), std::move(value));
}

void TraceContext::End(SimTime end) const {
  if (sink) sink->EndSpan(*this, end);
}

TraceSink::TraceSink(TraceSinkOptions options) : options_(options) {}

TraceContext TraceSink::StartTrace(std::string name, SimTime start) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_traces == 0) return {};
  while (traces_.size() >= options_.max_traces) traces_.pop_front();
  Trace& trace = traces_.emplace_back();
  trace.id = next_trace_++;
  SpanRecord root;
  root.id = trace.next_span++;
  root.parent = 0;
  root.name = std::move(name);
  root.start = start;
  root.end = start;
  trace.index[root.id] = trace.spans.size();
  trace.spans.push_back(std::move(root));
  return {this, trace.id, 1};
}

TraceContext TraceSink::StartSpan(const TraceContext& parent, std::string name,
                                  SimTime start) {
  if (!parent.active()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  Trace* trace = Find(parent.trace);
  if (trace == nullptr) return {};  // evicted while the query was running
  if (trace->spans.size() >= options_.max_spans_per_trace) {
    ++dropped_spans_;
    return {};
  }
  SpanRecord span;
  span.id = trace->next_span++;
  span.parent = parent.span;
  span.name = std::move(name);
  span.start = start;
  span.end = start;
  trace->index[span.id] = trace->spans.size();
  trace->spans.push_back(std::move(span));
  return {this, trace->id, span.id};
}

void TraceSink::Annotate(const TraceContext& ctx, std::string key,
                         std::string value) {
  if (!ctx.active()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Trace* trace = Find(ctx.trace);
  if (trace == nullptr) return;
  auto it = trace->index.find(ctx.span);
  if (it == trace->index.end()) return;
  trace->spans[it->second].tags.emplace_back(std::move(key), std::move(value));
}

void TraceSink::EndSpan(const TraceContext& ctx, SimTime end) {
  if (!ctx.active()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Trace* trace = Find(ctx.trace);
  if (trace == nullptr) return;
  auto it = trace->index.find(ctx.span);
  if (it == trace->index.end()) return;
  trace->spans[it->second].end = end;
}

size_t TraceSink::Graft(const TraceContext& parent,
                        const std::vector<SpanRecord>& batch) {
  if (!parent.active() || parent.sink != this || batch.empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  Trace* trace = Find(parent.trace);
  if (trace == nullptr) return 0;
  // Old (batch-local) id -> new raw id in this trace.
  std::unordered_map<uint64_t, uint64_t> remap;
  size_t grafted = 0;
  for (const SpanRecord& span : batch) {
    if (trace->spans.size() >= options_.max_spans_per_trace) {
      dropped_spans_ +=
          static_cast<int64_t>(batch.size() - grafted);
      break;
    }
    SpanRecord copy = span;
    copy.id = trace->next_span++;
    remap[span.id] = copy.id;
    auto it = remap.find(span.parent);
    copy.parent = it != remap.end() ? it->second : parent.span;
    trace->index[copy.id] = trace->spans.size();
    trace->spans.push_back(std::move(copy));
    ++grafted;
  }
  return grafted;
}

size_t TraceSink::num_traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::vector<uint64_t> TraceSink::TraceIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(traces_.size());
  for (const Trace& trace : traces_) ids.push_back(trace.id);
  return ids;
}

uint64_t TraceSink::LastTraceId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.empty() ? 0 : traces_.back().id;
}

size_t TraceSink::NumSpans(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Trace* trace = Find(trace_id);
  return trace == nullptr ? 0 : trace->spans.size();
}

int64_t TraceSink::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_spans_;
}

TraceSink::Trace* TraceSink::Find(uint64_t trace_id) {
  for (Trace& trace : traces_) {
    if (trace.id == trace_id) return &trace;
  }
  return nullptr;
}

const TraceSink::Trace* TraceSink::Find(uint64_t trace_id) const {
  for (const Trace& trace : traces_) {
    if (trace.id == trace_id) return &trace;
  }
  return nullptr;
}

namespace {

// Canonicalization: spans were recorded under a mutex but possibly from
// several pool workers, so raw ids and vector order depend on thread
// interleaving. Sorting each sibling list by (start, end, name, raw id)
// and renumbering in DFS pre-order yields an ordering and id assignment
// that depend only on the simulated execution, never on the host.
struct CanonicalTree {
  // Indices into the raw span vector, DFS pre-order.
  std::vector<size_t> order;
  // Parallel to `order`: canonical id (= position in `order` + 1) of the
  // parent, 0 for the root.
  std::vector<uint64_t> parent;
  // Parallel to `order`: depth of the span (root = 0).
  std::vector<int> depth;
};

CanonicalTree Canonicalize(const std::vector<SpanRecord>& spans) {
  std::unordered_map<uint64_t, std::vector<size_t>> children;
  std::vector<size_t> roots;
  std::unordered_map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent != 0 && by_id.count(spans[i].parent)) {
      children[spans[i].parent].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  auto sort_siblings = [&spans](std::vector<size_t>& list) {
    std::sort(list.begin(), list.end(), [&spans](size_t a, size_t b) {
      const SpanRecord& x = spans[a];
      const SpanRecord& y = spans[b];
      if (x.start != y.start) return x.start < y.start;
      if (x.end != y.end) return x.end < y.end;
      if (x.name != y.name) return x.name < y.name;
      return x.id < y.id;
    });
  };
  sort_siblings(roots);
  for (auto& [id, list] : children) sort_siblings(list);

  CanonicalTree tree;
  tree.order.reserve(spans.size());
  std::function<void(size_t, uint64_t, int)> visit = [&](size_t idx,
                                                         uint64_t parent_canon,
                                                         int depth) {
    tree.order.push_back(idx);
    tree.parent.push_back(parent_canon);
    tree.depth.push_back(depth);
    uint64_t canon = tree.order.size();  // 1-based canonical id
    auto it = children.find(spans[idx].id);
    if (it != children.end()) {
      for (size_t child : it->second) visit(child, canon, depth + 1);
    }
  };
  for (size_t root : roots) visit(root, 0, 0);
  return tree;
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::vector<SpanRecord> TraceSink::Spans(uint64_t trace_id) const {
  std::vector<SpanRecord> raw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Trace* trace = Find(trace_id);
    if (trace == nullptr) return {};
    raw = trace->spans;
  }
  CanonicalTree tree = Canonicalize(raw);
  std::vector<SpanRecord> out;
  out.reserve(tree.order.size());
  for (size_t i = 0; i < tree.order.size(); ++i) {
    SpanRecord span = raw[tree.order[i]];
    span.id = i + 1;
    span.parent = tree.parent[i];
    out.push_back(std::move(span));
  }
  return out;
}

std::string TraceSink::ExportChromeTrace(uint64_t trace_id) const {
  std::vector<SpanRecord> spans = Spans(trace_id);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"";
    AppendJsonEscaped(out, span.name);
    out += "\",\"cat\":\"scalewall\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(span.start);
    out += ",\"dur\":";
    out += std::to_string(span.end > span.start ? span.end - span.start : 0);
    out += ",\"pid\":";
    out += std::to_string(trace_id);
    out += ",\"tid\":";
    out += std::to_string(span.id);
    out += ",\"args\":{\"span\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    for (const auto& [key, value] : span.tags) {
      out += ",\"";
      AppendJsonEscaped(out, key);
      out += "\":\"";
      AppendJsonEscaped(out, value);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string TraceSink::ExportTextTree(uint64_t trace_id) const {
  std::vector<SpanRecord> raw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Trace* trace = Find(trace_id);
    if (trace == nullptr) return "";
    raw = trace->spans;
  }
  CanonicalTree tree = Canonicalize(raw);
  std::ostringstream out;
  for (size_t i = 0; i < tree.order.size(); ++i) {
    const SpanRecord& span = raw[tree.order[i]];
    for (int d = 0; d < tree.depth[i]; ++d) out << "  ";
    SimDuration dur = span.end > span.start ? span.end - span.start : 0;
    out << span.name << " [start=" << span.start << " dur=" << dur << "]";
    for (const auto& [key, value] : span.tags) {
      out << " " << key << "=" << value;
    }
    out << "\n";
  }
  return out.str();
}

std::string TraceSink::ExportCanonicalTree(uint64_t trace_id) const {
  std::vector<SpanRecord> raw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Trace* trace = Find(trace_id);
    if (trace == nullptr) return "";
    raw = trace->spans;
  }
  // Children keyed by raw id; roots are spans with unknown parents.
  std::unordered_map<uint64_t, std::vector<size_t>> children;
  std::unordered_map<uint64_t, size_t> by_id;
  std::vector<size_t> roots;
  for (size_t i = 0; i < raw.size(); ++i) by_id[raw[i].id] = i;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i].parent != 0 && by_id.count(raw[i].parent)) {
      children[raw[i].parent].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  // Render each subtree bottom-up; siblings sort by their rendered
  // text, so the output is a pure function of the span *content* — no
  // timestamps, raw ids or recording order can leak in.
  std::function<std::string(size_t, int)> render = [&](size_t idx,
                                                       int depth) {
    const SpanRecord& span = raw[idx];
    std::string line(static_cast<size_t>(depth) * 2, ' ');
    line += span.name;
    for (const auto& [key, value] : span.tags) {
      line += " ";
      line += key;
      line += "=";
      line += value;
    }
    line += "\n";
    auto it = children.find(span.id);
    if (it != children.end()) {
      std::vector<std::string> subtrees;
      subtrees.reserve(it->second.size());
      for (size_t child : it->second) subtrees.push_back(render(child, depth + 1));
      std::sort(subtrees.begin(), subtrees.end());
      for (const std::string& sub : subtrees) line += sub;
    }
    return line;
  };
  std::vector<std::string> rendered;
  rendered.reserve(roots.size());
  for (size_t root : roots) rendered.push_back(render(root, 0));
  std::sort(rendered.begin(), rendered.end());
  std::string out;
  for (const std::string& tree : rendered) out += tree;
  return out;
}

}  // namespace scalewall::obs
