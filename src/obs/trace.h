// Distributed query tracing (scalewall::obs).
//
// The paper leans on SM's "full-fledged management consoles and
// monitoring dashboards" (Section IV) for its operational story; this
// module is the cross-layer half of that capability for the
// reproduction. A TraceContext — trace id, span id — is propagated down
// the whole query path (proxy attempt → coordinator subquery → server
// partition → morsel) and every layer records spans into a bounded
// in-memory TraceSink.
//
// All timestamps are *simulated* time, so a trace is a pure function of
// the deployment seed: two runs with the same seed export byte-identical
// traces. Span *recording* may happen concurrently (morsel spans are
// emitted from exec-pool workers), so the sink serializes writes and the
// exporters canonicalize span order and ids — insertion order and raw id
// assignment never leak into the output.
//
// Exports: a Chrome trace-event JSON document (load in chrome://tracing
// or Perfetto) and an indented text tree (tests, CLI).

#ifndef SCALEWALL_OBS_TRACE_H_
#define SCALEWALL_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.h"

namespace scalewall::obs {

class TraceSink;

// A handle naming one open span of one trace. Copyable and cheap; an
// inactive context (default-constructed, or returned when the sink
// dropped the span) turns every operation into a no-op, so call sites
// never branch on whether tracing is enabled.
struct TraceContext {
  TraceSink* sink = nullptr;
  uint64_t trace = 0;
  uint64_t span = 0;

  bool active() const { return sink != nullptr; }

  // Opens a child span at `start` (simulated time). Returns an inactive
  // context when this context is inactive or the sink refused the span.
  TraceContext Child(std::string name, SimTime start) const;
  // Attaches a key=value annotation to this span.
  void Annotate(std::string key, std::string value) const;
  // Closes the span at `end`. A span never explicitly ended exports
  // with end == start.
  void End(SimTime end) const;
};

// One finished (or still open) span as stored/exported. In exported
// form, `id` and `parent` are canonical: spans are renumbered in
// deterministic tree order, so ids are stable across runs regardless of
// the thread interleaving that recorded them.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  std::string name;
  SimTime start = 0;
  SimTime end = 0;
  std::vector<std::pair<std::string, std::string>> tags;
};

struct TraceSinkOptions {
  // Traces retained; starting one more evicts the oldest whole trace.
  size_t max_traces = 64;
  // Spans retained per trace; once reached, StartSpan returns an
  // inactive context (the span and its would-be subtree are dropped and
  // counted in dropped_spans()).
  size_t max_spans_per_trace = 4096;
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkOptions options = {});

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Opens a new trace with one root span. Trace ids are sequential from
  // 1 in call order (deterministic under the simulator).
  TraceContext StartTrace(std::string name, SimTime start);

  // Opens a child span; prefer TraceContext::Child.
  TraceContext StartSpan(const TraceContext& parent, std::string name,
                         SimTime start);
  void Annotate(const TraceContext& ctx, std::string key, std::string value);
  void EndSpan(const TraceContext& ctx, SimTime end);

  // Stitches a batch of spans recorded by *another* sink (typically a
  // remote scalewall_node process, shipped back as a wire span batch)
  // into this sink under `parent`. The batch uses its own id space:
  // spans whose `parent` is 0 (or names no span in the batch) attach
  // directly under `parent`; the rest keep their relative tree shape.
  // Spans beyond max_spans_per_trace are dropped and counted. Returns
  // the number of spans grafted.
  size_t Graft(const TraceContext& parent, const std::vector<SpanRecord>& batch);

  // --- introspection ---
  size_t num_traces() const;
  // Retained trace ids, oldest first.
  std::vector<uint64_t> TraceIds() const;
  // Most recently started trace id, or 0 when none is retained.
  uint64_t LastTraceId() const;
  size_t NumSpans(uint64_t trace_id) const;
  int64_t dropped_spans() const;

  // Spans of one trace in canonical order (deterministic DFS: children
  // sorted by start time, then end, then name) with canonical ids.
  // Empty when the trace is unknown/evicted.
  std::vector<SpanRecord> Spans(uint64_t trace_id) const;

  // Chrome trace-event JSON for one trace ("X" complete events,
  // microsecond timestamps). Loadable in chrome://tracing / Perfetto.
  std::string ExportChromeTrace(uint64_t trace_id) const;

  // Indented text rendering of the span tree:
  //   query t [start=0 dur=1234] status=OK
  //     attempt 1 [start=0 dur=1234] region=0
  std::string ExportTextTree(uint64_t trace_id) const;

  // Timestamp-free canonical rendering: name + tags per span, siblings
  // ordered by their fully rendered subtrees (name, tags, children) —
  // never by time or recording order. Two runs that execute the same
  // query over the same data produce byte-identical canonical trees
  // even when one runs on the simulated clock and the other on real
  // sockets with wall-clock timestamps; this is the form the
  // sim-vs-real stitching invariant is asserted on.
  std::string ExportCanonicalTree(uint64_t trace_id) const;

 private:
  struct Trace {
    uint64_t id = 0;
    uint64_t next_span = 1;
    std::vector<SpanRecord> spans;  // insertion order, raw ids
    // raw span id -> index into `spans`.
    std::unordered_map<uint64_t, size_t> index;
  };

  // Both return nullptr when the trace is not retained. Callers hold mu_.
  Trace* Find(uint64_t trace_id);
  const Trace* Find(uint64_t trace_id) const;

  mutable std::mutex mu_;
  TraceSinkOptions options_;
  uint64_t next_trace_ = 1;
  int64_t dropped_spans_ = 0;
  std::deque<Trace> traces_;
};

}  // namespace scalewall::obs

#endif  // SCALEWALL_OBS_TRACE_H_
