// Latency and failure models.
//
// The paper's scalability-wall model assumes "servers have a 0.01% chance
// of failure at any given time" (Figures 1-2) and attributes the fan-out
// latency blowup (Figure 5) to "non-deterministic sources of tail latency"
// [Dean & Barroso, The Tail at Scale]. We model:
//
//  * per-request service latency: lognormal body with probability
//    `tail_probability` of being replaced by a Pareto-tailed hiccup
//    (GC pause, network retransmit, co-tenant interference);
//  * per-request transient failure: Bernoulli with the per-host failure
//    probability (the paper's p);
//  * network hop latency: lognormal.
//
// All draws come from an Rng stream owned by the caller so experiments are
// reproducible.

#ifndef SCALEWALL_SIM_LATENCY_MODEL_H_
#define SCALEWALL_SIM_LATENCY_MODEL_H_

#include <cmath>

#include "common/random.h"
#include "common/time.h"

namespace scalewall::sim {

// Parameters of the per-request service latency distribution.
struct LatencyModelOptions {
  // Median of the lognormal body.
  SimDuration median = 20 * kMillisecond;
  // Lognormal sigma; ~0.3 gives a tight interactive-query distribution.
  double sigma = 0.3;
  // Probability a request hits a slow-path hiccup.
  double tail_probability = 0.01;
  // Pareto scale (minimum hiccup latency) and shape. Shape ~1.5 gives the
  // heavy tail observed in production tail-latency studies.
  SimDuration tail_scale = 200 * kMillisecond;
  double tail_shape = 1.5;
  // Hard cap so a single sample cannot run past any realistic timeout.
  SimDuration max = 60 * kSecond;
};

// Draws per-request service latencies.
class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelOptions options = {})
      : options_(options), mu_(std::log(static_cast<double>(options.median))) {}

  const LatencyModelOptions& options() const { return options_; }

  // One service-latency sample.
  SimDuration Sample(Rng& rng) const {
    double v;
    if (rng.NextBool(options_.tail_probability)) {
      v = rng.NextPareto(static_cast<double>(options_.tail_scale),
                         options_.tail_shape);
    } else {
      v = rng.NextLognormal(mu_, options_.sigma);
    }
    if (v > static_cast<double>(options_.max)) {
      v = static_cast<double>(options_.max);
    }
    if (v < 1.0) v = 1.0;
    return static_cast<SimDuration>(v);
  }

 private:
  LatencyModelOptions options_;
  double mu_;
};

// Parameters of a single network hop.
struct NetworkModelOptions {
  SimDuration median = 300;  // 300us intra-datacenter
  double sigma = 0.25;
  SimDuration cross_region_extra = 30 * kMillisecond;  // WAN RTT component
};

// Draws network hop latencies; cross-region hops add a WAN component.
class NetworkModel {
 public:
  explicit NetworkModel(NetworkModelOptions options = {})
      : options_(options), mu_(std::log(static_cast<double>(options.median))) {}

  SimDuration SampleHop(Rng& rng, bool cross_region = false) const {
    double v = rng.NextLognormal(mu_, options_.sigma);
    if (cross_region) v += static_cast<double>(options_.cross_region_extra);
    if (v < 1.0) v = 1.0;
    return static_cast<SimDuration>(v);
  }

 private:
  NetworkModelOptions options_;
  double mu_;
};

// Transient per-request failure model: each server touched by a request
// independently fails it with probability p ("0.01% chance of failure at
// any given instant"). This is the process behind Figures 1 and 2.
class TransientFailureModel {
 public:
  explicit TransientFailureModel(double per_host_probability)
      : p_(per_host_probability) {}

  double probability() const { return p_; }

  // True if this host fails the request.
  bool Fails(Rng& rng) const { return rng.NextBool(p_); }

  // Analytic probability that a query touching `fanout` hosts succeeds.
  double AnalyticSuccess(int fanout) const {
    return std::pow(1.0 - p_, fanout);
  }

 private:
  double p_;
};

}  // namespace scalewall::sim

#endif  // SCALEWALL_SIM_LATENCY_MODEL_H_
