// Latency and failure models.
//
// The paper's scalability-wall model assumes "servers have a 0.01% chance
// of failure at any given time" (Figures 1-2) and attributes the fan-out
// latency blowup (Figure 5) to "non-deterministic sources of tail latency"
// [Dean & Barroso, The Tail at Scale]. We model:
//
//  * per-request service latency: lognormal body with probability
//    `tail_probability` of being replaced by a Pareto-tailed hiccup
//    (GC pause, network retransmit, co-tenant interference);
//  * per-request transient failure: Bernoulli with the per-host failure
//    probability (the paper's p);
//  * network hop latency: lognormal.
//
// All draws come from an Rng stream owned by the caller so experiments are
// reproducible.

#ifndef SCALEWALL_SIM_LATENCY_MODEL_H_
#define SCALEWALL_SIM_LATENCY_MODEL_H_

#include <cmath>

#include "common/random.h"
#include "common/time.h"

namespace scalewall::sim {

namespace detail {

// Acklam's rational approximation of the inverse normal CDF (relative
// error < 1.15e-9 over the open unit interval).
inline double InverseNormalCdf(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace detail

// Parameters of the per-request service latency distribution.
struct LatencyModelOptions {
  // Median of the lognormal body.
  SimDuration median = 20 * kMillisecond;
  // Lognormal sigma; ~0.3 gives a tight interactive-query distribution.
  double sigma = 0.3;
  // Probability a request hits a slow-path hiccup.
  double tail_probability = 0.01;
  // Pareto scale (minimum hiccup latency) and shape. Shape ~1.5 gives the
  // heavy tail observed in production tail-latency studies.
  SimDuration tail_scale = 200 * kMillisecond;
  double tail_shape = 1.5;
  // Hard cap so a single sample cannot run past any realistic timeout.
  SimDuration max = 60 * kSecond;
};

// Draws per-request service latencies.
class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelOptions options = {})
      : options_(options), mu_(std::log(static_cast<double>(options.median))) {}

  const LatencyModelOptions& options() const { return options_; }

  // One service-latency sample.
  SimDuration Sample(Rng& rng) const {
    double v;
    if (rng.NextBool(options_.tail_probability)) {
      v = rng.NextPareto(static_cast<double>(options_.tail_scale),
                         options_.tail_shape);
    } else {
      v = rng.NextLognormal(mu_, options_.sigma);
    }
    if (v > static_cast<double>(options_.max)) {
      v = static_cast<double>(options_.max);
    }
    if (v < 1.0) v = 1.0;
    return static_cast<SimDuration>(v);
  }

  // Analytic quantile of the lognormal *body* of the distribution (the
  // Pareto tail only displaces quantiles above 1 - tail_probability).
  // Hedging policies use this to decide when a subquery has been
  // outstanding long enough that a duplicate dispatch is worthwhile
  // [Dean & Barroso, The Tail at Scale].
  SimDuration Quantile(double q) const {
    q = std::min(std::max(q, 1e-6), 1.0 - 1e-6);
    double v = std::exp(mu_ + options_.sigma * detail::InverseNormalCdf(q));
    if (v > static_cast<double>(options_.max)) {
      v = static_cast<double>(options_.max);
    }
    if (v < 1.0) v = 1.0;
    return static_cast<SimDuration>(v);
  }

 private:
  LatencyModelOptions options_;
  double mu_;
};

// Parameters of a single network hop.
struct NetworkModelOptions {
  SimDuration median = 300;  // 300us intra-datacenter
  double sigma = 0.25;
  SimDuration cross_region_extra = 30 * kMillisecond;  // WAN RTT component
};

// Draws network hop latencies; cross-region hops add a WAN component.
class NetworkModel {
 public:
  explicit NetworkModel(NetworkModelOptions options = {})
      : options_(options), mu_(std::log(static_cast<double>(options.median))) {}

  const NetworkModelOptions& options() const { return options_; }

  SimDuration SampleHop(Rng& rng, bool cross_region = false) const {
    double v = rng.NextLognormal(mu_, options_.sigma);
    if (cross_region) v += static_cast<double>(options_.cross_region_extra);
    if (v < 1.0) v = 1.0;
    return static_cast<SimDuration>(v);
  }

 private:
  NetworkModelOptions options_;
  double mu_;
};

// Transient per-request failure model: each server touched by a request
// independently fails it with probability p ("0.01% chance of failure at
// any given instant"). This is the process behind Figures 1 and 2.
class TransientFailureModel {
 public:
  explicit TransientFailureModel(double per_host_probability)
      : p_(per_host_probability) {}

  double probability() const { return p_; }

  // True if this host fails the request.
  bool Fails(Rng& rng) const { return rng.NextBool(p_); }

  // Analytic probability that a query touching `fanout` hosts succeeds.
  double AnalyticSuccess(int fanout) const {
    return std::pow(1.0 - p_, fanout);
  }

 private:
  double p_;
};

}  // namespace scalewall::sim

#endif  // SCALEWALL_SIM_LATENCY_MODEL_H_
