#include "sim/simulation.h"

#include <utility>

#include "common/logging.h"

namespace scalewall::sim {

EventId Simulation::ScheduleAt(SimTime when, std::function<void()> fn) {
  SCALEWALL_CHECK(when >= now_) << "scheduling into the past: " << when
                                << " < " << now_;
  EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulation::SchedulePeriodic(SimDuration initial_delay,
                                     SimDuration period,
                                     std::function<void()> fn) {
  SCALEWALL_CHECK(period > 0) << "periodic event needs positive period";
  EventId id = next_id_++;
  periodics_.emplace(id, Periodic{period, std::move(fn)});
  queue_.push(Event{now_ + initial_delay, next_seq_++, id});
  // Periodic events keep their id across firings; the callback map entry
  // is a trampoline that re-arms itself.
  callbacks_.emplace(id, [] {});  // placeholder; Dispatch special-cases it.
  return id;
}

void Simulation::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it != callbacks_.end()) {
    callbacks_.erase(it);
    ++stale_cancelled_;
  }
  periodics_.erase(id);
}

void Simulation::Dispatch(const Event& ev) {
  auto pit = periodics_.find(ev.id);
  if (pit != periodics_.end()) {
    // Re-arm before running so the callback may Cancel() itself.
    queue_.push(Event{now_ + pit->second.period, next_seq_++, ev.id});
    ++events_executed_;
    pit->second.fn();
    return;
  }
  auto it = callbacks_.find(ev.id);
  if (it == callbacks_.end()) {
    // Cancelled.
    if (stale_cancelled_ > 0) --stale_cancelled_;
    return;
  }
  std::function<void()> fn = std::move(it->second);
  callbacks_.erase(it);
  ++events_executed_;
  fn();
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    // Skip cancelled one-shot events without advancing time for them...
    // actually time must advance to the event's slot to stay monotonic.
    bool is_periodic = periodics_.count(ev.id) > 0;
    bool is_live = is_periodic || callbacks_.count(ev.id) > 0;
    if (!is_live) {
      if (stale_cancelled_ > 0) --stale_cancelled_;
      continue;
    }
    now_ = ev.when;
    Dispatch(ev);
    return true;
  }
  return false;
}

void Simulation::Run() {
  while (Step()) {
  }
}

void Simulation::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (deadline > now_) now_ = deadline;
}

}  // namespace scalewall::sim
