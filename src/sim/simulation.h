// Deterministic discrete-event simulation engine.
//
// This is the substrate substituting for the Facebook production fleet: SM
// heartbeats, load-balancer cycles, service-discovery propagation, query
// arrival/latency and failure processes are all events on one queue,
// executed in deterministic order (time, then insertion sequence).
//
// Usage:
//   Simulation sim(/*seed=*/42);
//   sim.ScheduleAfter(10 * kSecond, [&] { ... });
//   sim.RunFor(7 * kDay);

#ifndef SCALEWALL_SIM_SIMULATION_H_
#define SCALEWALL_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/time.h"

namespace scalewall::sim {

// Opaque handle for cancelling a scheduled event.
using EventId = uint64_t;

class Simulation {
 public:
  explicit Simulation(uint64_t seed) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  SimTime now() const { return now_; }

  // Root RNG; components should Fork() their own streams from it.
  Rng& rng() { return rng_; }

  // Schedules `fn` to run at absolute time `when` (>= now). Events at equal
  // times run in scheduling order.
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` every `period`, starting after `initial_delay`. The
  // callback receives no arguments; cancel via the returned id.
  EventId SchedulePeriodic(SimDuration initial_delay, SimDuration period,
                           std::function<void()> fn);

  // Cancels a pending (or periodic) event. Safe to call from within event
  // callbacks or for already-fired one-shot events.
  void Cancel(EventId id);

  // Runs events until the queue is empty.
  void Run();

  // Runs events with time <= deadline; leaves now() == deadline.
  void RunUntil(SimTime deadline);

  // Runs for `duration` from the current time.
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Executes the single next event, if any. Returns false if queue empty.
  bool Step();

  // Number of events executed so far (for tests/diagnostics).
  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size() - stale_cancelled_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    EventId id;
    // Ordered min-first by (when, seq).
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void Dispatch(const Event& ev);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_executed_ = 0;
  size_t stale_cancelled_ = 0;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  // Callbacks keyed by id so cancellation can drop them without scanning
  // the priority queue.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  struct Periodic {
    SimDuration period;
    std::function<void()> fn;
  };
  std::unordered_map<EventId, Periodic> periodics_;
};

}  // namespace scalewall::sim

#endif  // SCALEWALL_SIM_SIMULATION_H_
