// AppServer: the endpoint contract an application implements to run under
// Shard Manager.
//
// "Application Servers are fully responsible for implementing the business
// logic of addShard() and dropShard() endpoints. On a stateful service,
// the addShard() implementation would be responsible for discovering what
// data needs to be recovered, where to recover it from, and the actual
// recovery process" (Section III-A). The graceful-migration endpoints
// prepareAddShard()/prepareDropShard() come from Section IV-E, and the
// metric/capacity exports from Section III-A3.

#ifndef SCALEWALL_SM_APP_SERVER_H_
#define SCALEWALL_SM_APP_SERVER_H_

#include <string_view>

#include "cluster/server.h"
#include "common/status.h"
#include "sm/types.h"

namespace scalewall::sm {

class AppServer {
 public:
  virtual ~AppServer() = default;

  // The cluster server this application instance runs on.
  virtual cluster::ServerId server_id() const = 0;

  // Takes ownership of `shard` in `role`. On a failover the application
  // must recover the shard's data itself (e.g., Cubrick copies it from a
  // healthy region). Returning kNonRetryable tells SM this server can
  // never host this shard (e.g., it would create a shard collision) and
  // that placement should be retried elsewhere.
  virtual Status AddShard(ShardId shard, ShardRole role) = 0;

  // Releases `shard`, dropping its data and metadata.
  virtual Status DropShard(ShardId shard) = 0;

  // Graceful migration, step 1: prepare to take over `shard` currently on
  // `from` (copy data/metadata from the healthy old server). After this
  // returns OK the server must be able to answer requests for the shard
  // if they are forwarded by the old server.
  virtual Status PrepareAddShard(ShardId shard, cluster::ServerId from) = 0;

  // Graceful migration, step 2 (on the old server): start forwarding all
  // requests for `shard` to `to`.
  virtual Status PrepareDropShard(ShardId shard, cluster::ServerId to) = 0;

  // Per-shard weight for the named load-balancing metric. Shards not
  // hosted here report 0.
  virtual double ShardLoad(ShardId shard, std::string_view metric) const = 0;

  // Total capacity of this host for the named metric. "SM also allows
  // application servers to periodically export (and change) the current
  // capacity of a host" — SM re-reads this every balancing cycle.
  virtual double Capacity(std::string_view metric) const = 0;
};

}  // namespace scalewall::sm

#endif  // SCALEWALL_SM_APP_SERVER_H_
