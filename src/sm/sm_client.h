// SmClient: the client-side library used to reach application servers.
//
// "When required to interact with AS, AS clients need to provide a service
// name and a shard number to SM Client library. SM Client library will
// resolve the pair (service, shard) to a hostname by leveraging the
// service discovery system SMC. SMC is backed by Zookeeper and cached by a
// service running locally on every single server in the fleet" (Section
// III-A). Resolution therefore happens against the *viewer host's* local
// proxy view, which can be seconds stale after a migration (Figure 4c) —
// callers must be prepared for kUnavailable and retry after re-resolving.

#ifndef SCALEWALL_SM_SM_CLIENT_H_
#define SCALEWALL_SM_SM_CLIENT_H_

#include <string>

#include "cluster/cluster.h"
#include "common/status.h"
#include "discovery/service_discovery.h"
#include "sm/types.h"

namespace scalewall::sm {

class SmClient {
 public:
  // `viewer` is the host this client runs on (its local SMC proxy view);
  // use cluster::kInvalidServer for an off-fleet client, which then sees
  // the slowest-propagating view deterministically keyed to id 0.
  SmClient(const discovery::ServiceDiscovery* service_discovery,
           const cluster::Cluster* cluster, cluster::ServerId viewer)
      : service_discovery_(service_discovery),
        cluster_(cluster),
        viewer_(viewer == cluster::kInvalidServer ? 0 : viewer) {}

  // Resolves (service, shard) to the hosting server as visible from this
  // client's local discovery proxy.
  Result<cluster::ServerId> Resolve(const std::string& service,
                                    ShardId shard) const {
    return service_discovery_->Resolve(service, shard, viewer_);
  }

  // Resolves and additionally checks the target is currently serving;
  // returns kUnavailable for mapped-but-dead servers so callers retry.
  Result<cluster::ServerId> ResolveServing(const std::string& service,
                                           ShardId shard) const {
    return CheckServing(Resolve(service, shard), shard);
  }

  // Re-resolution path for retries: consults the authoritative SMC root
  // instead of the (possibly seconds-stale, Figure 4c) local proxy view.
  // A subquery that just failed because its shard moved — e.g. SM
  // published a failover replica the local cache has not absorbed yet —
  // finds the new owner here. Costs an extra metadata roundtrip, so it is
  // reserved for the retry path, never first sends.
  Result<cluster::ServerId> ResolveServingFresh(const std::string& service,
                                                ShardId shard) const {
    return CheckServing(
        service_discovery_->ResolveAuthoritative(service, shard), shard);
  }

 private:
  Result<cluster::ServerId> CheckServing(Result<cluster::ServerId> result,
                                         ShardId shard) const {
    if (!result.ok()) return result;
    if (!cluster_->Contains(*result) || !cluster_->Get(*result).IsServing()) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " mapped to dead server " +
                                 std::to_string(*result));
    }
    return result;
  }

  const discovery::ServiceDiscovery* service_discovery_;
  const cluster::Cluster* cluster_;
  cluster::ServerId viewer_;
};

}  // namespace scalewall::sm

#endif  // SCALEWALL_SM_SM_CLIENT_H_
