#include "sm/sm_server.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace scalewall::sm {

std::string_view MigrationReasonName(MigrationReason reason) {
  switch (reason) {
    case MigrationReason::kLoadBalancing:
      return "LOAD_BALANCING";
    case MigrationReason::kDrain:
      return "DRAIN";
    case MigrationReason::kFailover:
      return "FAILOVER";
    case MigrationReason::kManual:
      return "MANUAL";
  }
  return "?";
}

SmServer::Stats::Stats(obs::MetricsRegistry* registry,
                       const obs::MetricLabels& labels) {
  if (registry == nullptr) return;
  // Registered under the exact names the hand-written exporter used, so
  // the scrape output is unchanged by the migration.
  placements = registry->GetCounter("scalewall_sm_placements_total", labels);
  placement_rejections =
      registry->GetCounter("scalewall_sm_placement_rejections_total", labels);
  live_migrations =
      registry->GetCounter("scalewall_sm_live_migrations_total", labels);
  failovers = registry->GetCounter("scalewall_sm_failovers_total", labels);
  lb_runs = registry->GetCounter("scalewall_sm_lb_runs_total", labels);
  lb_migrations =
      registry->GetCounter("scalewall_sm_lb_migrations_total", labels);
  drain_migrations =
      registry->GetCounter("scalewall_sm_drain_migrations_total", labels);
  aborted_migrations =
      registry->GetCounter("scalewall_sm_aborted_migrations_total", labels);
}

SmServer::SmServer(sim::Simulation* simulation, cluster::Cluster* cluster,
                   discovery::Datastore* datastore,
                   discovery::ServiceDiscovery* service_discovery,
                   ServiceConfig config, SmServerOptions options)
    : simulation_(simulation),
      cluster_(cluster),
      datastore_(datastore),
      service_discovery_(service_discovery),
      config_(std::move(config)),
      options_(options),
      rng_(simulation->rng().Fork(HashString(config_.name))),
      stats_(options_.metrics, options_.metric_labels) {
  // Failure detection: the datastore notifies us when an application
  // server's heartbeat session expires.
  datastore_->Watch("", [this](const discovery::WatchEvent& event) {
    if (event.type != discovery::WatchEvent::Type::kSessionExpired) return;
    for (auto& [server, host] : hosts_) {
      if (host.session == event.session) {
        OnSessionExpired(server);
        return;
      }
    }
  });
  // Automation integration: draining servers have their shards migrated
  // away without waiting for heartbeats to stop.
  cluster_->AddHealthListener([this](cluster::ServerId server,
                                     cluster::ServerHealth /*old_health*/,
                                     cluster::ServerHealth new_health) {
    if (new_health == cluster::ServerHealth::kDraining &&
        hosts_.count(server) > 0) {
      DrainServer(server);
    }
  });
}

Status SmServer::RegisterAppServer(AppServer* app) {
  cluster::ServerId server = app->server_id();
  if (hosts_.count(server) > 0) {
    return Status::AlreadyExists("app server already registered on host " +
                                 std::to_string(server));
  }
  if (!cluster_->Contains(server)) {
    return Status::NotFound("unknown cluster server " +
                            std::to_string(server));
  }
  HostState host;
  host.app = app;
  host.session = datastore_->CreateSession(config_.name + "/host/" +
                                           std::to_string(server));
  // The SM library linked into the application heartbeats while the host
  // is serving; when the host dies, heartbeats stop and the session
  // expires, which is how SM detects the failure.
  host.heartbeat_task = simulation_->SchedulePeriodic(
      config_.heartbeat_interval, config_.heartbeat_interval,
      [this, server] {
        auto it = hosts_.find(server);
        if (it == hosts_.end()) return;
        if (cluster_->Contains(server) &&
            cluster_->Get(server).IsServing()) {
          datastore_->Heartbeat(it->second.session);
        }
      });
  hosts_.emplace(server, std::move(host));
  return Status::Ok();
}

void SmServer::UnregisterAppServer(cluster::ServerId server) {
  auto it = hosts_.find(server);
  if (it == hosts_.end()) return;
  simulation_->Cancel(it->second.heartbeat_task);
  datastore_->CloseSession(it->second.session);
  hosts_.erase(it);
}

void SmServer::Start() {
  if (started_) return;
  started_ = true;
  if (!config_.lazy_placement) {
    // Eager mode: place the entire flat key space up front (the
    // production regime; new tables then inherit existing placements —
    // including any co-locations, Section IV-A "collisions at table
    // creation time"). Only sensible for modest key spaces.
    for (ShardId shard = 0; shard < config_.max_shards; ++shard) {
      EnsureShard(shard);
    }
  }
  simulation_->SchedulePeriodic(config_.load_balancing.interval,
                                config_.load_balancing.interval,
                                [this] { RunLoadBalancer(); });
}

double SmServer::ServerLoad(cluster::ServerId server) const {
  auto it = hosts_.find(server);
  if (it == hosts_.end()) return 0;
  double load = 0;
  for (ShardId shard : it->second.shards) {
    load += it->second.app->ShardLoad(shard, config_.load_balancing.metric);
  }
  return load;
}

double SmServer::ServerCapacity(cluster::ServerId server) const {
  auto it = hosts_.find(server);
  if (it == hosts_.end()) return 0;
  return it->second.app->Capacity(config_.load_balancing.metric);
}

std::map<cluster::ServerId, double> SmServer::Utilization() const {
  std::map<cluster::ServerId, double> out;
  for (const auto& [server, host] : hosts_) {
    if (!cluster_->Contains(server) || !cluster_->Get(server).IsServing()) {
      continue;
    }
    double cap = ServerCapacity(server);
    out[server] = cap > 0 ? ServerLoad(server) / cap : 0.0;
  }
  return out;
}

bool SmServer::SpreadAllows(const ShardAssignment& assignment,
                            cluster::ServerId server) const {
  const cluster::ServerInfo& candidate = cluster_->Get(server);
  for (const Replica& replica : assignment.replicas) {
    if (!cluster_->Contains(replica.server)) continue;
    const cluster::ServerInfo& existing = cluster_->Get(replica.server);
    switch (config_.spread) {
      case SpreadDomain::kServer:
        if (existing.id == candidate.id) return false;
        break;
      case SpreadDomain::kRack:
        if (existing.rack == candidate.rack) return false;
        break;
      case SpreadDomain::kRegion:
        if (existing.region == candidate.region) return false;
        break;
    }
  }
  return true;
}

std::vector<cluster::ServerId> SmServer::RankedCandidates(
    ShardId shard, const std::unordered_set<cluster::ServerId>& exclude,
    double shard_load) const {
  const ShardAssignment* assignment = GetAssignment(shard);
  std::vector<std::pair<double, cluster::ServerId>> scored;
  for (const auto& [server, host] : hosts_) {
    if (exclude.count(server) > 0) continue;
    if (!cluster_->Contains(server)) continue;
    if (!cluster_->Get(server).IsPlaceable()) continue;
    if (assignment != nullptr && assignment->HostedOn(server)) continue;
    if (assignment != nullptr && !SpreadAllows(*assignment, server)) continue;
    double cap = ServerCapacity(server);
    if (cap <= 0) continue;
    double projected = (ServerLoad(server) + shard_load) / cap;
    if (projected > config_.load_balancing.max_utilization) continue;
    scored.emplace_back(projected, server);
  }
  // Least-utilized first; ties broken by a per-shard hash so equally
  // empty servers don't all queue up in id order (which would make
  // collision rejections walk the same prefix for every shard).
  std::sort(scored.begin(), scored.end(),
            [shard](const std::pair<double, cluster::ServerId>& a,
                    const std::pair<double, cluster::ServerId>& b) {
              if (a.first != b.first) return a.first < b.first;
              return HashCombine(HashInt(shard), HashInt(a.second)) <
                     HashCombine(HashInt(shard), HashInt(b.second));
            });
  std::vector<cluster::ServerId> out;
  out.reserve(scored.size());
  for (const auto& [score, server] : scored) out.push_back(server);
  return out;
}

void SmServer::AttachReplica(ShardId shard, cluster::ServerId server,
                             ShardRole role) {
  ShardAssignment& assignment = assignments_[shard];
  assignment.shard = shard;
  assignment.replicas.push_back(Replica{server, role});
  auto it = hosts_.find(server);
  if (it != hosts_.end()) it->second.shards.insert(shard);
}

void SmServer::DetachReplica(ShardId shard, cluster::ServerId server) {
  auto ait = assignments_.find(shard);
  if (ait != assignments_.end()) {
    auto& replicas = ait->second.replicas;
    replicas.erase(std::remove_if(replicas.begin(), replicas.end(),
                                  [server](const Replica& r) {
                                    return r.server == server;
                                  }),
                   replicas.end());
  }
  auto hit = hosts_.find(server);
  if (hit != hosts_.end()) hit->second.shards.erase(shard);
}

Result<cluster::ServerId> SmServer::PlaceReplica(
    ShardId shard, ShardRole role,
    const std::unordered_set<cluster::ServerId>& exclude) {
  double shard_load = 0;
  auto lit = shard_load_cache_.find(shard);
  if (lit != shard_load_cache_.end()) shard_load = lit->second;

  std::vector<cluster::ServerId> candidates =
      RankedCandidates(shard, exclude, shard_load);
  int transient_failures = 0;
  for (cluster::ServerId server : candidates) {
    Status st = hosts_.at(server).app->AddShard(shard, role);
    if (st.ok()) {
      AttachReplica(shard, server, role);
      ++stats_.placements;
      return server;
    }
    if (st.code() == StatusCode::kNonRetryable) {
      // E.g. a shard collision on this host (Section IV-A): SM must try
      // migrating/placing it somewhere else. Rejections do not consume
      // the attempt budget — on a fleet dense with partitions of one
      // table, most candidates may legitimately refuse.
      ++stats_.placement_rejections;
      continue;
    }
    // Transient refusal; budget these so a flapping fleet cannot spin.
    if (++transient_failures >= options_.max_placement_attempts) break;
  }
  return Status::ResourceExhausted("no eligible server for shard " +
                                   std::to_string(shard));
}

Status SmServer::EnsureShard(ShardId shard) {
  if (shard >= config_.max_shards) {
    return Status::InvalidArgument("shard id out of key space");
  }
  auto it = assignments_.find(shard);
  if (it != assignments_.end() && !it->second.replicas.empty()) {
    return Status::Ok();
  }
  std::vector<ShardRole> roles;
  switch (config_.replication) {
    case ReplicationModel::kPrimaryOnly:
      roles.push_back(ShardRole::kPrimary);
      break;
    case ReplicationModel::kPrimarySecondary:
      roles.push_back(ShardRole::kPrimary);
      for (int i = 0; i < config_.replication_factor; ++i) {
        roles.push_back(ShardRole::kSecondary);
      }
      break;
    case ReplicationModel::kSecondaryOnly:
      for (int i = 0; i < config_.replication_factor + 1; ++i) {
        roles.push_back(ShardRole::kSecondary);
      }
      break;
  }
  std::vector<cluster::ServerId> placed;
  for (ShardRole role : roles) {
    auto result = PlaceReplica(shard, role, /*exclude=*/{});
    if (!result.ok()) {
      // Roll back partial placements so a retry starts clean.
      for (cluster::ServerId server : placed) {
        auto hit = hosts_.find(server);
        if (hit != hosts_.end()) hit->second.app->DropShard(shard);
        DetachReplica(shard, server);
      }
      assignments_.erase(shard);
      return result.status();
    }
    placed.push_back(*result);
  }
  PublishAssignment(shard);
  return Status::Ok();
}

const ShardAssignment* SmServer::GetAssignment(ShardId shard) const {
  auto it = assignments_.find(shard);
  return it == assignments_.end() ? nullptr : &it->second;
}

std::vector<ShardId> SmServer::ShardsOnServer(cluster::ServerId server) const {
  auto it = hosts_.find(server);
  if (it == hosts_.end()) return {};
  return {it->second.shards.begin(), it->second.shards.end()};
}

void SmServer::PublishAssignment(ShardId shard) {
  const ShardAssignment* assignment = GetAssignment(shard);
  std::string key =
      config_.name + "/assignments/" + std::to_string(shard);
  if (assignment == nullptr || assignment->replicas.empty()) {
    service_discovery_->Unpublish(config_.name, shard);
    datastore_->Delete(key);
    return;
  }
  const Replica* primary = assignment->PrimaryReplica();
  cluster::ServerId server =
      primary != nullptr ? primary->server : assignment->replicas[0].server;
  service_discovery_->Publish(config_.name, shard, server);
  // Persist the full replica set: "server:role;server:role;...".
  std::string value;
  for (const Replica& replica : assignment->replicas) {
    if (!value.empty()) value += ';';
    value += std::to_string(replica.server) + ':' +
             (replica.role == ShardRole::kPrimary ? 'P' : 'S');
  }
  datastore_->Put(key, value);
}

Result<ShardAssignment> SmServer::LoadPersistedAssignment(
    ShardId shard) const {
  auto value = datastore_->Get(config_.name + "/assignments/" +
                               std::to_string(shard));
  SCALEWALL_RETURN_IF_ERROR(value.status());
  ShardAssignment assignment;
  assignment.shard = shard;
  size_t pos = 0;
  const std::string& text = *value;
  while (pos < text.size()) {
    size_t colon = text.find(':', pos);
    if (colon == std::string::npos) {
      return Status::Internal("corrupt persisted assignment: " + text);
    }
    Replica replica;
    replica.server = static_cast<cluster::ServerId>(
        std::stoul(text.substr(pos, colon - pos)));
    replica.role =
        text[colon + 1] == 'P' ? ShardRole::kPrimary : ShardRole::kSecondary;
    assignment.replicas.push_back(replica);
    pos = colon + 2;
    if (pos < text.size() && text[pos] == ';') ++pos;
  }
  return assignment;
}

void SmServer::RecordMigrationStart(MigrationReason reason) {
  int64_t day = simulation_->now() / kDay;
  stats_.migrations_per_day[day]++;
  switch (reason) {
    case MigrationReason::kLoadBalancing:
      ++stats_.lb_migrations;
      ++stats_.live_migrations;
      break;
    case MigrationReason::kDrain:
      ++stats_.drain_migrations;
      ++stats_.live_migrations;
      break;
    case MigrationReason::kManual:
      ++stats_.live_migrations;
      break;
    case MigrationReason::kFailover:
      ++stats_.failovers;
      break;
  }
}

Status SmServer::RequestMigration(ShardId shard, cluster::ServerId from,
                                  MigrationReason reason) {
  const ShardAssignment* assignment = GetAssignment(shard);
  if (assignment == nullptr || !assignment->HostedOn(from)) {
    return Status::NotFound("shard " + std::to_string(shard) +
                            " not hosted on server " + std::to_string(from));
  }
  if (active_migrations_.count(shard) > 0) {
    return Status::FailedPrecondition("shard already migrating");
  }
  ShardRole role = ShardRole::kPrimary;
  for (const Replica& r : assignment->replicas) {
    if (r.server == from) role = r.role;
  }
  double load = 0;
  auto hit = hosts_.find(from);
  if (hit != hosts_.end()) {
    load = hit->second.app->ShardLoad(shard, config_.load_balancing.metric);
    shard_load_cache_[shard] = load;
  }
  std::unordered_set<cluster::ServerId> exclude{from};
  std::vector<cluster::ServerId> candidates =
      RankedCandidates(shard, exclude, load);
  if (candidates.empty()) {
    return Status::ResourceExhausted("no migration target for shard " +
                                     std::to_string(shard));
  }
  StartGracefulMigration(
      Migration{shard, from, candidates[0], role, reason, {}});
  return Status::Ok();
}

void SmServer::StartGracefulMigration(const Migration& migration) {
  if (active_migrations_.count(migration.shard) > 0) return;
  active_migrations_.emplace(migration.shard, migration);
  RecordMigrationStart(migration.reason);
  SCALEWALL_LOG(kInfo) << config_.name << ": graceful migration of shard "
                       << migration.shard << " " << migration.from << " -> "
                       << migration.to << " ("
                       << MigrationReasonName(migration.reason) << ")";

  ShardId shard = migration.shard;
  // Step 1 (after one control round trip): prepareAddShard on the target.
  simulation_->ScheduleAfter(options_.control_latency,
                             [this, shard] { MigrationPrepareStep(shard); });
}

void SmServer::MigrationPrepareStep(ShardId shard) {
  auto mit = active_migrations_.find(shard);
  if (mit == active_migrations_.end()) return;  // cancelled
  Migration m = mit->second;
  auto from_it = hosts_.find(m.from);
  auto to_it = hosts_.find(m.to);
  if (from_it == hosts_.end() || to_it == hosts_.end() ||
      !cluster_->Contains(m.to) || !cluster_->Get(m.to).IsPlaceable()) {
    AbortMigration(shard);
    return;
  }
  Status st = to_it->second.app->PrepareAddShard(shard, m.from);
  if (st.code() == StatusCode::kNonRetryable) {
    // Shard collision on the target ("it should try migrating it
    // somewhere else", Section IV-A): restart the workflow — including
    // the prepare step — against the best candidate not yet tried.
    ++stats_.placement_rejections;
    Migration retry = m;
    retry.rejected.push_back(m.to);
    std::unordered_set<cluster::ServerId> exclude{m.from};
    for (cluster::ServerId r : retry.rejected) exclude.insert(r);
    double load =
        shard_load_cache_.count(shard) ? shard_load_cache_[shard] : 0.0;
    std::vector<cluster::ServerId> candidates =
        RankedCandidates(shard, exclude, load);
    active_migrations_.erase(shard);
    if (candidates.empty()) {
      ++stats_.aborted_migrations;
      return;
    }
    retry.to = candidates[0];
    // Not double-counted in migration stats: same logical migration.
    active_migrations_.emplace(shard, retry);
    simulation_->ScheduleAfter(options_.control_latency,
                               [this, shard] { MigrationPrepareStep(shard); });
    return;
  }
  if (!st.ok()) {
    AbortMigration(shard);
    return;
  }
  ContinueMigrationCopy(shard);
}

void SmServer::ContinueMigrationCopy(ShardId shard) {
  auto mit = active_migrations_.find(shard);
  if (mit == active_migrations_.end()) return;
  // Data copy duration scales with the shard's last known weight.
  double load = 0;
  auto lit = shard_load_cache_.find(shard);
  if (lit != shard_load_cache_.end()) load = lit->second;
  SimDuration copy = static_cast<SimDuration>(
      load / options_.copy_bandwidth_per_sec * static_cast<double>(kSecond));
  if (copy < options_.control_latency) copy = options_.control_latency;

  simulation_->ScheduleAfter(copy, [this, shard] {
    auto mit = active_migrations_.find(shard);
    if (mit == active_migrations_.end()) return;
    Migration m = mit->second;
    auto from_it = hosts_.find(m.from);
    auto to_it = hosts_.find(m.to);
    if (from_it == hosts_.end() || to_it == hosts_.end()) {
      AbortMigration(shard);
      return;
    }
    // Step 2: old server starts forwarding requests to the new one.
    from_it->second.app->PrepareDropShard(shard, m.to);
    // Step 3: new server takes effective ownership.
    simulation_->ScheduleAfter(options_.control_latency, [this, shard] {
      auto mit = active_migrations_.find(shard);
      if (mit == active_migrations_.end()) return;
      Migration m = mit->second;
      auto to_it = hosts_.find(m.to);
      if (to_it == hosts_.end()) {
        AbortMigration(shard);
        return;
      }
      Status st = to_it->second.app->AddShard(shard, m.role);
      if (!st.ok()) {
        AbortMigration(shard);
        return;
      }
      // Authoritative assignment flips; SMC learns the new mapping and
      // propagates it to clients over the next seconds.
      DetachReplica(shard, m.from);
      // Keep the old server's data until dropShard: re-list it in the
      // host set so its load still counts, but not in the assignment.
      auto from_it = hosts_.find(m.from);
      if (from_it != hosts_.end()) from_it->second.shards.insert(shard);
      AttachReplica(shard, m.to, m.role);
      PublishAssignment(shard);
      // Step 4: after the propagation grace period, the old copy is
      // deleted (Section IV-E: "Cubrick waits for a pre-defined number of
      // seconds (SMC's usual propagation delay)").
      simulation_->ScheduleAfter(options_.drop_delay, [this, shard] {
        auto mit = active_migrations_.find(shard);
        if (mit == active_migrations_.end()) return;
        Migration m = mit->second;
        auto from_it = hosts_.find(m.from);
        if (from_it != hosts_.end()) {
          from_it->second.app->DropShard(shard);
          from_it->second.shards.erase(shard);
        }
        active_migrations_.erase(shard);
      });
    });
  });
}

void SmServer::AbortMigration(ShardId shard) {
  auto mit = active_migrations_.find(shard);
  if (mit == active_migrations_.end()) return;
  Migration m = mit->second;
  const ShardAssignment* assignment = GetAssignment(shard);
  // Best effort cleanup of a partially prepared target.
  auto to_it = hosts_.find(m.to);
  bool to_owns = assignment != nullptr && assignment->HostedOn(m.to);
  if (to_it != hosts_.end() && !to_owns) {
    to_it->second.app->DropShard(shard);
    to_it->second.shards.erase(shard);
  }
  // And of the source's leftover pre-drop copy once ownership has moved
  // on (the scheduled dropShard step dies with the migration record).
  auto from_it = hosts_.find(m.from);
  bool from_owns = assignment != nullptr && assignment->HostedOn(m.from);
  if (from_it != hosts_.end() && !from_owns) {
    from_it->second.app->DropShard(shard);
    from_it->second.shards.erase(shard);
  }
  ++stats_.aborted_migrations;
  active_migrations_.erase(shard);
}

void SmServer::OnSessionExpired(cluster::ServerId server) {
  SCALEWALL_LOG(kInfo) << config_.name << ": heartbeat session expired for "
                       << server << "; failing over its shards";
  FailoverShardsOn(server);
  auto it = hosts_.find(server);
  if (it != hosts_.end()) {
    simulation_->Cancel(it->second.heartbeat_task);
    hosts_.erase(it);
  }
}

void SmServer::FailoverShardsOn(cluster::ServerId dead) {
  auto it = hosts_.find(dead);
  if (it == hosts_.end()) return;
  std::vector<ShardId> shards(it->second.shards.begin(),
                              it->second.shards.end());
  for (ShardId shard : shards) {
    // Cancel any in-flight migration touching the dead server, cleaning
    // up the counterpart's partial copies (a leaked staged copy would
    // non-retryably block this shard's table from that server forever).
    if (active_migrations_.count(shard) > 0) {
      AbortMigration(shard);
    }
    ShardRole role = ShardRole::kPrimary;
    const ShardAssignment* assignment = GetAssignment(shard);
    bool assigned_here = false;
    if (assignment != nullptr) {
      for (const Replica& r : assignment->replicas) {
        if (r.server == dead) {
          role = r.role;
          assigned_here = true;
        }
      }
    }
    DetachReplica(shard, dead);
    if (!assigned_here) continue;  // was only a stale pre-drop copy
    FailoverReplica(shard, role, dead);
  }
}

void SmServer::FailoverReplica(ShardId shard, ShardRole role,
                               cluster::ServerId dead) {
  RecordMigrationStart(MigrationReason::kFailover);
  const ShardAssignment* assignment = GetAssignment(shard);
  // Primary-secondary: elect a surviving secondary as the new primary
  // first, then backfill a new secondary (Section III-A2).
  if (config_.replication == ReplicationModel::kPrimarySecondary &&
      role == ShardRole::kPrimary && assignment != nullptr &&
      !assignment->replicas.empty()) {
    auto ait = assignments_.find(shard);
    Replica& promoted = ait->second.replicas.front();
    promoted.role = ShardRole::kPrimary;
    auto hit = hosts_.find(promoted.server);
    if (hit != hosts_.end()) {
      hit->second.app->AddShard(shard, ShardRole::kPrimary);  // promote
    }
    PublishAssignment(shard);
    role = ShardRole::kSecondary;  // backfill a secondary below
  }
  // Failovers are a single addShard on the new server; the application
  // recovers data itself (Cubrick: from a healthy region). Model the
  // recovery time from the last known shard weight.
  double load = 0;
  auto lit = shard_load_cache_.find(shard);
  if (lit != shard_load_cache_.end()) load = lit->second;
  SimDuration recovery = static_cast<SimDuration>(
      load / options_.copy_bandwidth_per_sec * static_cast<double>(kSecond));
  if (recovery < options_.control_latency) recovery = options_.control_latency;

  simulation_->ScheduleAfter(recovery, [this, shard, role, dead] {
    const ShardAssignment* assignment = GetAssignment(shard);
    if (assignment != nullptr && assignment->HostedOn(dead)) return;
    // Another path (a concurrent EnsureShard from a write, or an earlier
    // failover retry) may have already restored the replica set; placing
    // again would create a second owner with its own data copy.
    if (assignment != nullptr &&
        assignment->replicas.size() >= RequiredReplicas()) {
      return;
    }
    auto result = PlaceReplica(shard, role, /*exclude=*/{dead});
    if (result.ok()) {
      PublishAssignment(shard);
    } else {
      // No capacity right now; retry after a minute.
      simulation_->ScheduleAfter(1 * kMinute, [this, shard, role, dead] {
        const ShardAssignment* a = GetAssignment(shard);
        if (a != nullptr && a->replicas.size() >= RequiredReplicas()) {
          return;
        }
        FailoverReplica(shard, role, dead);
      });
    }
  });
}

void SmServer::DrainServer(cluster::ServerId server) {
  auto it = hosts_.find(server);
  if (it == hosts_.end()) return;
  std::vector<ShardId> shards(it->second.shards.begin(),
                              it->second.shards.end());
  for (ShardId shard : shards) {
    if (active_migrations_.count(shard) > 0) continue;
    const ShardAssignment* assignment = GetAssignment(shard);
    if (assignment == nullptr || !assignment->HostedOn(server)) continue;
    ShardRole role = ShardRole::kPrimary;
    for (const Replica& r : assignment->replicas) {
      if (r.server == server) role = r.role;
    }
    double load =
        it->second.app->ShardLoad(shard, config_.load_balancing.metric);
    shard_load_cache_[shard] = load;
    std::unordered_set<cluster::ServerId> exclude{server};
    std::vector<cluster::ServerId> candidates =
        RankedCandidates(shard, exclude, load);
    if (candidates.empty()) continue;  // retried on the next LB pass
    StartGracefulMigration(
        Migration{shard, server, candidates[0], role,
                  MigrationReason::kDrain, {}});
  }
}

int SmServer::RunLoadBalancer() {
  ++stats_.lb_runs;
  // Metrics collection: refresh per-shard weights and per-host loads and
  // capacities from the application servers.
  struct HostLoad {
    cluster::ServerId server;
    double load;
    double capacity;
  };
  std::vector<HostLoad> hosts;
  for (auto& [server, host] : hosts_) {
    if (!cluster_->Contains(server)) continue;
    const cluster::ServerInfo& info = cluster_->Get(server);
    if (info.health == cluster::ServerHealth::kDraining) {
      // Keep draining: shards may have had no target on the last pass.
      DrainServer(server);
      continue;
    }
    if (!info.IsPlaceable()) continue;
    double load = 0;
    for (ShardId shard : host.shards) {
      double w = host.app->ShardLoad(shard, config_.load_balancing.metric);
      shard_load_cache_[shard] = w;
      load += w;
    }
    double cap = host.app->Capacity(config_.load_balancing.metric);
    if (cap <= 0) continue;
    hosts.push_back(HostLoad{server, load, cap});
  }
  if (hosts.size() < 2) return 0;

  int migrations = 0;
  while (migrations < config_.load_balancing.max_migrations_per_run) {
    auto [min_it, max_it] = std::minmax_element(
        hosts.begin(), hosts.end(), [](const HostLoad& a, const HostLoad& b) {
          return a.load / a.capacity < b.load / b.capacity;
        });
    double util_max = max_it->load / max_it->capacity;
    double util_min = min_it->load / min_it->capacity;
    if (util_max - util_min <= config_.load_balancing.imbalance_threshold) {
      break;
    }
    // Pick the largest shard on the hottest host whose move narrows the
    // gap without overshooting or overfilling the target.
    auto host_it = hosts_.find(max_it->server);
    if (host_it == hosts_.end()) break;
    ShardId best = kInvalidShard;
    double best_load = -1;
    for (ShardId shard : host_it->second.shards) {
      if (active_migrations_.count(shard) > 0) continue;
      const ShardAssignment* assignment = GetAssignment(shard);
      if (assignment == nullptr || !assignment->HostedOn(max_it->server)) {
        continue;  // stale pre-drop copy
      }
      if (!SpreadAllowsMove(*assignment, max_it->server, min_it->server)) {
        continue;
      }
      double w = shard_load_cache_.count(shard) ? shard_load_cache_[shard] : 0;
      if (w <= 0) continue;
      double target_util = (min_it->load + w) / min_it->capacity;
      if (target_util > config_.load_balancing.max_utilization) continue;
      if (target_util > util_max) continue;  // would just swap the hotspot
      if (w > best_load) {
        best_load = w;
        best = shard;
      }
    }
    if (best == kInvalidShard) break;
    ShardRole role = ShardRole::kPrimary;
    const ShardAssignment* assignment = GetAssignment(best);
    for (const Replica& r : assignment->replicas) {
      if (r.server == max_it->server) role = r.role;
    }
    StartGracefulMigration(Migration{best, max_it->server, min_it->server,
                                     role, MigrationReason::kLoadBalancing,
                                     {}});
    max_it->load -= best_load;
    min_it->load += best_load;
    ++migrations;
  }
  return migrations;
}

bool SmServer::SpreadAllowsMove(const ShardAssignment& assignment,
                                cluster::ServerId from,
                                cluster::ServerId to) const {
  // Check spread as if the `from` replica were already removed.
  ShardAssignment hypothetical = assignment;
  auto& replicas = hypothetical.replicas;
  replicas.erase(std::remove_if(replicas.begin(), replicas.end(),
                                [from](const Replica& r) {
                                  return r.server == from;
                                }),
                 replicas.end());
  if (hypothetical.HostedOn(to)) return false;
  return SpreadAllows(hypothetical, to);
}

}  // namespace scalewall::sm
