// SmServer: the central Shard Manager scheduler (Section III-A).
//
// One SmServer instance manages one service (Cubrick deploys three
// independent primary-only services, one per region — Section IV-D). It:
//
//  * registers application servers and keeps a datastore session alive for
//    each (the "SM library" heartbeat); session expiry triggers failover;
//  * places shards on servers subject to capacity, health and spread
//    constraints, retrying elsewhere when the application rejects a
//    placement with a non-retryable error (shard collision, Section IV-A);
//  * runs the periodic load balancer: collects per-shard metrics and host
//    capacities from application servers and migrates shards from hot to
//    cold hosts, throttled per run (Section III-A3);
//  * executes graceful live shard migrations (prepareAddShard ->
//    prepareDropShard -> addShard -> publish -> delayed dropShard,
//    Section IV-E) and failovers (single addShard on the new server);
//  * integrates with automation: draining servers have their shards
//    migrated away gracefully (Section IV-G).

#ifndef SCALEWALL_SM_SM_SERVER_H_
#define SCALEWALL_SM_SM_SERVER_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "discovery/datastore.h"
#include "discovery/service_discovery.h"
#include "obs/metrics_registry.h"
#include "sim/simulation.h"
#include "sm/app_server.h"
#include "sm/types.h"

namespace scalewall::sm {

struct SmServerOptions {
  // Data-copy bandwidth used to model migration/recovery durations, in
  // metric units (bytes) per second.
  double copy_bandwidth_per_sec = 200e6;
  // Latency of one control-plane step (endpoint call round trip).
  SimDuration control_latency = 50 * kMillisecond;
  // Grace period between addShard on the new server and dropShard on the
  // old one: SMC's usual propagation delay, so clients drain off the old
  // mapping before data disappears (Section IV-E).
  SimDuration drop_delay = 10 * kSecond;
  // How many alternative targets to try when placements are rejected
  // (shard collisions can disqualify most of a region for wide tables).
  int max_placement_attempts = 64;
  // Unified metrics registry the Stats counters register into, with
  // `metric_labels` (e.g. {{"region","0"}}) on every series. Null =
  // standalone counters.
  obs::MetricsRegistry* metrics = nullptr;
  obs::MetricLabels metric_labels;
};

class SmServer {
 public:
  // All pointers must outlive the SmServer. The datastore session timeout
  // should exceed config.heartbeat_interval.
  SmServer(sim::Simulation* simulation, cluster::Cluster* cluster,
           discovery::Datastore* datastore,
           discovery::ServiceDiscovery* service_discovery,
           ServiceConfig config, SmServerOptions options = {});

  SmServer(const SmServer&) = delete;
  SmServer& operator=(const SmServer&) = delete;

  const ServiceConfig& config() const { return config_; }
  const std::string& service_name() const { return config_.name; }

  // Registers the application server running on app->server_id(). Starts
  // its heartbeat session. The AppServer must outlive this SmServer (or be
  // unregistered first).
  Status RegisterAppServer(AppServer* app);
  void UnregisterAppServer(cluster::ServerId server);

  // Starts periodic duties (load balancing). Registration and placement
  // work without Start(); Start() arms the balancer clock.
  void Start();

  // Ensures `shard` has a full replica set placed; no-op when already
  // assigned. This is the lazy-placement entry point used when tables are
  // created.
  Status EnsureShard(ShardId shard);

  // Authoritative assignment (SM server view; clients should resolve via
  // service discovery, which propagates with delay).
  const ShardAssignment* GetAssignment(ShardId shard) const;
  std::vector<ShardId> ShardsOnServer(cluster::ServerId server) const;
  size_t num_assigned_shards() const { return assignments_.size(); }

  // Reads the assignment persisted in the datastore ("Zookeeper is used
  // to store SM server's persistent state", Section III-A) — what a
  // restarted SM server would recover, and what tooling inspects.
  Result<ShardAssignment> LoadPersistedAssignment(ShardId shard) const;

  // Requests a graceful migration of one replica of `shard` off `from`
  // (manual intervention entry point).
  Status RequestMigration(ShardId shard, cluster::ServerId from,
                          MigrationReason reason);

  // Migrates everything off `server` gracefully (drain workflow).
  void DrainServer(cluster::ServerId server);

  // Runs one load-balancer pass; returns the number of migrations started.
  int RunLoadBalancer();

  // Current utilization (load/capacity) per registered, serving server,
  // as measured with the configured metric.
  std::map<cluster::ServerId, double> Utilization() const;

  // Counters live in obs handles so a registry-attached SM exports them
  // as scalewall_sm_*{<metric_labels>} series; without a registry they
  // behave exactly like the plain-int64 fields they replaced.
  struct Stats {
    explicit Stats(obs::MetricsRegistry* registry = nullptr,
                   const obs::MetricLabels& labels = {});

    obs::Counter placements;
    obs::Counter placement_rejections;  // non-retryable AddShard refusals
    obs::Counter live_migrations;
    obs::Counter failovers;
    obs::Counter lb_runs;
    obs::Counter lb_migrations;
    obs::Counter drain_migrations;
    obs::Counter aborted_migrations;
    // Simulated day index -> migrations started that day (Figure 4d).
    std::map<int64_t, int> migrations_per_day;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct HostState {
    AppServer* app = nullptr;
    discovery::SessionId session = discovery::kInvalidSession;
    sim::EventId heartbeat_task = 0;
    std::set<ShardId> shards;  // replicas hosted here (any role)
  };

  struct Migration {
    ShardId shard;
    cluster::ServerId from;
    cluster::ServerId to;
    ShardRole role;
    MigrationReason reason;
    // Targets that already rejected this migration (shard collisions).
    std::vector<cluster::ServerId> rejected;
  };

  // Eligible servers for hosting a new replica of `shard`, cheapest
  // (lowest projected utilization) first.
  std::vector<cluster::ServerId> RankedCandidates(
      ShardId shard, const std::unordered_set<cluster::ServerId>& exclude,
      double shard_load) const;

  // True if adding a replica on `server` satisfies the spread constraint
  // w.r.t. the shard's other replicas.
  bool SpreadAllows(const ShardAssignment& assignment,
                    cluster::ServerId server) const;

  // Spread check for moving a replica from `from` to `to` (ignores the
  // replica being moved).
  bool SpreadAllowsMove(const ShardAssignment& assignment,
                        cluster::ServerId from, cluster::ServerId to) const;

  double ServerLoad(cluster::ServerId server) const;
  double ServerCapacity(cluster::ServerId server) const;

  // Replicas a fully-assigned shard carries under the configured model.
  size_t RequiredReplicas() const {
    return config_.replication == ReplicationModel::kPrimaryOnly
               ? 1
               : static_cast<size_t>(config_.replication_factor) + 1;
  }

  // Places one new replica; walks candidates until one accepts.
  Result<cluster::ServerId> PlaceReplica(
      ShardId shard, ShardRole role,
      const std::unordered_set<cluster::ServerId>& exclude);

  void StartGracefulMigration(const Migration& migration);
  void MigrationPrepareStep(ShardId shard);
  void ContinueMigrationCopy(ShardId shard);
  void AbortMigration(ShardId shard);
  void FailoverShardsOn(cluster::ServerId dead);
  void FailoverReplica(ShardId shard, ShardRole role, cluster::ServerId dead);
  void OnSessionExpired(cluster::ServerId server);
  void PublishAssignment(ShardId shard);
  void RecordMigrationStart(MigrationReason reason);

  // Replica bookkeeping helpers.
  void AttachReplica(ShardId shard, cluster::ServerId server, ShardRole role);
  void DetachReplica(ShardId shard, cluster::ServerId server);

  sim::Simulation* simulation_;
  cluster::Cluster* cluster_;
  discovery::Datastore* datastore_;
  discovery::ServiceDiscovery* service_discovery_;
  ServiceConfig config_;
  SmServerOptions options_;
  Rng rng_;

  std::unordered_map<cluster::ServerId, HostState> hosts_;
  std::unordered_map<ShardId, ShardAssignment> assignments_;
  // In-flight graceful migrations keyed by shard; steps of the workflow
  // abandon themselves when their entry disappears (cancellation).
  std::unordered_map<ShardId, Migration> active_migrations_;
  // Last observed per-shard weight (refreshed by the balancer's metric
  // collection); used to model copy/recovery durations.
  std::unordered_map<ShardId, double> shard_load_cache_;
  Stats stats_;
  bool started_ = false;
};

}  // namespace scalewall::sm

#endif  // SCALEWALL_SM_SM_SERVER_H_
