// Shard Manager core types: shard ids, roles, replication models, service
// configuration (Section III-A).

#ifndef SCALEWALL_SM_TYPES_H_
#define SCALEWALL_SM_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/server.h"
#include "common/time.h"

namespace scalewall::sm {

// SM provides a flat key space for shards: [0..maxShards). A usual
// deployment utilizes between 100k and 1M total shards (Section IV-A).
using ShardId = uint32_t;
inline constexpr ShardId kInvalidShard = static_cast<ShardId>(-1);

// Roles a shard replica may play (Section III-A1).
enum class ShardRole {
  kPrimary,
  kSecondary,
};

// Fault tolerance models supported by SM (Section III-A1).
enum class ReplicationModel {
  // Single replica per shard; no redundancy (replication factor zero).
  kPrimaryOnly,
  // One primary (writes + replication coordination) plus secondaries.
  kPrimarySecondary,
  // All replicas play the same role.
  kSecondaryOnly,
};

// Failure domain granularity for replica spread (Section III-A1): replicas
// of one shard must land in distinct domains of this kind.
enum class SpreadDomain {
  kServer,
  kRack,
  kRegion,
};

// One replica of a shard: which server hosts it and in which role.
struct Replica {
  cluster::ServerId server = cluster::kInvalidServer;
  ShardRole role = ShardRole::kPrimary;

  bool operator==(const Replica& other) const {
    return server == other.server && role == other.role;
  }
};

// Load-balancing knobs (Section III-A3).
struct LoadBalancingConfig {
  // Name of the application metric used as shard weight / server capacity.
  // Cubrick's generations: "memory_footprint" (gen 1), "decompressed_size"
  // (gen 2), "ssd_footprint" (gen 3).
  std::string metric = "memory_footprint";
  // How often the SM server collects metrics and runs the balancer.
  SimDuration interval = 10 * kMinute;
  // Max shard migrations allowed on a single load balancing run
  // ("throttling load balancing migrations").
  int max_migrations_per_run = 8;
  // Balancer triggers when (max - min) server utilization exceeds this.
  double imbalance_threshold = 0.10;
  // Never place a shard on a server whose projected utilization would
  // exceed this fraction of capacity.
  double max_utilization = 0.95;
};

// Per-service configuration registered with the SM server.
struct ServiceConfig {
  std::string name;
  // Size of the flat shard key space.
  uint32_t max_shards = 100000;
  ReplicationModel replication = ReplicationModel::kPrimaryOnly;
  // Number of secondary replicas (0 => primary-only).
  int replication_factor = 0;
  SpreadDomain spread = SpreadDomain::kServer;
  LoadBalancingConfig load_balancing;
  // App-server heartbeat period; the datastore session timeout is a small
  // multiple of this.
  SimDuration heartbeat_interval = 5 * kSecond;
  // Only place shards when first referenced (keeps 100k-shard key spaces
  // cheap to simulate; unreferenced shards hold no data anyway).
  bool lazy_placement = true;
};

// Assignment of one shard: all its current replicas.
struct ShardAssignment {
  ShardId shard = kInvalidShard;
  std::vector<Replica> replicas;

  const Replica* PrimaryReplica() const {
    for (const Replica& r : replicas) {
      if (r.role == ShardRole::kPrimary) return &r;
    }
    return nullptr;
  }
  bool HostedOn(cluster::ServerId server) const {
    for (const Replica& r : replicas) {
      if (r.server == server) return true;
    }
    return false;
  }
};

// Reasons a shard migration can be triggered (Section IV-E).
enum class MigrationReason {
  kLoadBalancing,
  kDrain,
  kFailover,
  kManual,
};

std::string_view MigrationReasonName(MigrationReason reason);

}  // namespace scalewall::sm

#endif  // SCALEWALL_SM_TYPES_H_
