// Grouped-aggregation accumulation kernels.
//
// Templated over the aggregation-state type (the engine instantiates
// them with cubrick::AggState) so the *arithmetic* is byte-for-byte the
// interpreter's Add(); only the loop structure changes: one tight pass
// per aggregation over the chunk's surviving rows, states addressed by
// precomputed slot — no per-row map lookups, no per-row dispatch.
//
// Every kernel visits rows in selection order (ascending row index), so
// each group's state receives the same values in the same order as a
// row-at-a-time scan — the bit-identity contract.

#ifndef SCALEWALL_VEC_AGG_H_
#define SCALEWALL_VEC_AGG_H_

#include <cstddef>
#include <cstdint>

namespace scalewall::vec {

// states[slots[i] * stride + offset].Add(column[rows[i]]) for each
// selected row.
template <typename State>
inline void AccumulateColumn(State* states, size_t stride, size_t offset,
                             const uint32_t* slots, const uint32_t* rows,
                             size_t n, const double* column) {
  for (size_t i = 0; i < n; ++i) {
    states[static_cast<size_t>(slots[i]) * stride + offset].Add(
        column[rows[i]]);
  }
}

// COUNT: every selected row contributes the constant 1.0.
template <typename State>
inline void AccumulateConst(State* states, size_t stride, size_t offset,
                            const uint32_t* slots, size_t n, double value) {
  for (size_t i = 0; i < n; ++i) {
    states[static_cast<size_t>(slots[i]) * stride + offset].Add(value);
  }
}

// Dense variants: no selection, rows [begin, begin + n) with slots
// aligned to the range (slots[i] is row begin + i's slot).
template <typename State>
inline void AccumulateColumnDense(State* states, size_t stride,
                                  size_t offset, const uint32_t* slots,
                                  uint32_t begin, size_t n,
                                  const double* column) {
  for (size_t i = 0; i < n; ++i) {
    states[static_cast<size_t>(slots[i]) * stride + offset].Add(
        column[begin + i]);
  }
}

// Fused single-group-column fast path: the group column's value *is* the
// slot (stride-1 layout), so no slot array is materialized at all.
template <typename State>
inline void AccumulateColumnBySlotColumn(State* states, size_t stride,
                                         size_t offset,
                                         const uint32_t* slot_col,
                                         uint32_t begin, size_t n,
                                         const double* column) {
  for (size_t i = 0; i < n; ++i) {
    states[static_cast<size_t>(slot_col[begin + i]) * stride + offset].Add(
        column[begin + i]);
  }
}

template <typename State>
inline void AccumulateConstBySlotColumn(State* states, size_t stride,
                                        size_t offset,
                                        const uint32_t* slot_col,
                                        uint32_t begin, size_t n,
                                        double value) {
  for (size_t i = 0; i < n; ++i) {
    states[static_cast<size_t>(slot_col[begin + i]) * stride + offset].Add(
        value);
  }
}

// Ungrouped (single global state) variants.
template <typename State>
inline void AccumulateColumnGlobal(State& state, const uint32_t* rows,
                                   size_t n, const double* column) {
  for (size_t i = 0; i < n; ++i) state.Add(column[rows[i]]);
}

template <typename State>
inline void AccumulateColumnGlobalDense(State& state, uint32_t begin,
                                        size_t n, const double* column) {
  for (size_t i = 0; i < n; ++i) state.Add(column[begin + i]);
}

template <typename State>
inline void AccumulateConstGlobal(State& state, size_t n, double value) {
  for (size_t i = 0; i < n; ++i) state.Add(value);
}

}  // namespace scalewall::vec

#endif  // SCALEWALL_VEC_AGG_H_
