#include "vec/filter.h"

#include <algorithm>

namespace scalewall::vec {

namespace {

// lo <= v <= hi as a single unsigned compare: v - lo wraps below lo.
inline bool InRange(uint32_t v, uint32_t lo, uint32_t hi) {
  return (v - lo) <= (hi - lo);
}

}  // namespace

void SelRangeInit(const uint32_t* col, RowIndex begin, RowIndex end,
                  uint32_t lo, uint32_t hi, SelVec& sel) {
  sel.clear();
  sel.resize(end - begin);
  size_t n = 0;
  const uint32_t span = hi - lo;
  for (RowIndex i = begin; i < end; ++i) {
    sel[n] = i;
    n += (col[i] - lo) <= span ? 1 : 0;
  }
  sel.resize(n);
}

void SelRangeRefine(const uint32_t* col, uint32_t lo, uint32_t hi,
                    SelVec& sel) {
  size_t n = 0;
  const uint32_t span = hi - lo;
  for (RowIndex row : sel) {
    sel[n] = row;
    n += (col[row] - lo) <= span ? 1 : 0;
  }
  sel.resize(n);
}

InSet::InSet(const std::vector<uint32_t>& values, uint32_t domain) {
  use_bitset_ = domain <= kBitsetDomainLimit;
  if (use_bitset_) {
    domain_ = domain;
    bits_.assign((static_cast<size_t>(domain) + 63) / 64, 0);
    for (uint32_t v : values) {
      if (v < domain) bits_[v >> 6] |= uint64_t{1} << (v & 63);
    }
  } else {
    sorted_ = values;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_.erase(std::unique(sorted_.begin(), sorted_.end()),
                  sorted_.end());
  }
}

void SelInInit(const uint32_t* col, RowIndex begin, RowIndex end,
               const InSet& set, SelVec& sel) {
  sel.clear();
  sel.resize(end - begin);
  size_t n = 0;
  for (RowIndex i = begin; i < end; ++i) {
    sel[n] = i;
    n += set.Contains(col[i]) ? 1 : 0;
  }
  sel.resize(n);
}

void SelInRefine(const uint32_t* col, const InSet& set, SelVec& sel) {
  size_t n = 0;
  for (RowIndex row : sel) {
    sel[n] = row;
    n += set.Contains(col[row]) ? 1 : 0;
  }
  sel.resize(n);
}

void SelJoinRangeRefine(const uint32_t* keys_col, const uint32_t* attr_col,
                        uint32_t key_domain, uint32_t sentinel, uint32_t lo,
                        uint32_t hi, SelVec& sel) {
  if (attr_col == nullptr) {
    sel.clear();
    return;
  }
  size_t n = 0;
  const uint32_t span = hi - lo;
  for (RowIndex row : sel) {
    const uint32_t key = keys_col[row];
    const uint32_t attr = key < key_domain ? attr_col[key] : sentinel;
    sel[n] = row;
    n += (attr != sentinel && (attr - lo) <= span) ? 1 : 0;
  }
  sel.resize(n);
}

void GatherJoinAttribute(const uint32_t* keys_col, const uint32_t* attr_col,
                         uint32_t key_domain, uint32_t sentinel, SelVec& sel,
                         std::vector<std::vector<uint32_t>*> parallel,
                         std::vector<uint32_t>& out) {
  out.clear();
  if (attr_col == nullptr) {
    sel.clear();
    for (auto* col : parallel) col->clear();
    return;
  }
  out.resize(sel.size());
  size_t n = 0;
  for (size_t i = 0; i < sel.size(); ++i) {
    const RowIndex row = sel[i];
    const uint32_t key = keys_col[row];
    const uint32_t attr = key < key_domain ? attr_col[key] : sentinel;
    sel[n] = row;
    out[n] = attr;
    for (auto* col : parallel) (*col)[n] = (*col)[i];
    n += attr != sentinel ? 1 : 0;
  }
  sel.resize(n);
  out.resize(n);
  for (auto* col : parallel) col->resize(n);
}

}  // namespace scalewall::vec
