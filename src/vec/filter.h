// Selection-vector filter kernels.
//
// Each kernel evaluates one predicate over a uint32 column for a whole
// chunk of rows, either seeding a fresh selection vector or compacting an
// existing one. The loops are branch-light (a single unsigned compare
// decides range membership; survivors are written unconditionally and the
// cursor advanced by the predicate's 0/1 result) so compilers vectorize
// them — no per-row virtual dispatch, no std::find.

#ifndef SCALEWALL_VEC_FILTER_H_
#define SCALEWALL_VEC_FILTER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "vec/selvec.h"

namespace scalewall::vec {

// Seeds `sel` with every row i in [begin, end) where lo <= col[i] <= hi.
void SelRangeInit(const uint32_t* col, RowIndex begin, RowIndex end,
                  uint32_t lo, uint32_t hi, SelVec& sel);

// Compacts `sel`, keeping rows where lo <= col[row] <= hi.
void SelRangeRefine(const uint32_t* col, uint32_t lo, uint32_t hi,
                    SelVec& sel);

// Compiled IN-list: a bitset probe when the filtered dimension's domain
// is small enough to afford one, a sorted-vector binary search otherwise.
// Matching semantics are identical to a linear std::find over the raw
// value list. The `domain` hint bounds the values the probed column can
// contain (the insert-time dimension-domain invariant); list values at or
// beyond it can never match a stored row and are dropped from the probe
// structure.
class InSet {
 public:
  // Domains up to this many values get a bitset (128 KiB of bits).
  static constexpr uint32_t kBitsetDomainLimit = 1u << 20;

  InSet(const std::vector<uint32_t>& values, uint32_t domain);

  bool Contains(uint32_t v) const {
    if (use_bitset_) {
      return v < domain_ &&
             (bits_[v >> 6] & (uint64_t{1} << (v & 63))) != 0;
    }
    return std::binary_search(sorted_.begin(), sorted_.end(), v);
  }

  bool use_bitset() const { return use_bitset_; }

 private:
  bool use_bitset_;
  uint32_t domain_ = 0;
  std::vector<uint64_t> bits_;     // bitset mode
  std::vector<uint32_t> sorted_;   // sorted unique values otherwise
};

// Seeds `sel` with every row in [begin, end) whose value is in `set`.
void SelInInit(const uint32_t* col, RowIndex begin, RowIndex end,
               const InSet& set, SelVec& sel);

// Compacts `sel`, keeping rows whose column value is in `set`.
void SelInRefine(const uint32_t* col, const InSet& set, SelVec& sel);

// Join-attribute probe: keys_col[row] indexes `attr_col` (an inner-join
// dimension-table attribute column of `key_domain` entries, `sentinel`
// marking absent keys). Keeps rows whose key resolves to an attribute in
// [lo, hi]; out-of-domain keys, absent keys, and a null attr_col (an
// attribute column that does not exist) never pass — inner-join
// semantics.
void SelJoinRangeRefine(const uint32_t* keys_col, const uint32_t* attr_col,
                        uint32_t key_domain, uint32_t sentinel, uint32_t lo,
                        uint32_t hi, SelVec& sel);

// Same probe used for grouping: resolves each selected row's key to its
// attribute value, appending to `out` (aligned with `sel`), and drops
// unmatched rows from *both* `sel` and every column in `parallel`
// (earlier gathered attribute columns that must stay aligned).
void GatherJoinAttribute(const uint32_t* keys_col, const uint32_t* attr_col,
                         uint32_t key_domain, uint32_t sentinel, SelVec& sel,
                         std::vector<std::vector<uint32_t>*> parallel,
                         std::vector<uint32_t>& out);

}  // namespace scalewall::vec

#endif  // SCALEWALL_VEC_FILTER_H_
