#include "vec/group.h"

#include <cstring>

namespace scalewall::vec {

bool DirectLayout::Build(const std::vector<uint32_t>& cardinalities,
                        uint64_t max_slots) {
  strides.assign(cardinalities.size(), 1);
  cards = cardinalities;
  total_slots = 1;
  for (size_t i = cardinalities.size(); i-- > 0;) {
    strides[i] = total_slots;
    const uint64_t card = cardinalities[i];
    if (card == 0 || total_slots > max_slots / card) return false;
    total_slots *= card;
  }
  return total_slots <= max_slots;
}

void SlotAccumulate(const uint32_t* col, const uint32_t* rows, size_t n,
                    uint64_t stride, uint32_t* slots) {
  const uint32_t s = static_cast<uint32_t>(stride);
  for (size_t i = 0; i < n; ++i) {
    slots[i] += col[rows[i]] * s;
  }
}

void SlotAccumulateDense(const uint32_t* col, uint32_t begin, size_t n,
                         uint64_t stride, uint32_t* slots) {
  const uint32_t s = static_cast<uint32_t>(stride);
  for (size_t i = 0; i < n; ++i) {
    slots[i] += col[begin + i] * s;
  }
}

void SlotAccumulateGathered(const uint32_t* values, size_t n,
                            uint64_t stride, uint32_t* slots) {
  const uint32_t s = static_cast<uint32_t>(stride);
  for (size_t i = 0; i < n; ++i) {
    slots[i] += values[i] * s;
  }
}

GroupKeyIndex::GroupKeyIndex(size_t arity) : arity_(arity) {
  Rehash(64);
}

uint64_t GroupKeyIndex::HashKey(const uint32_t* key) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < arity_; ++i) {
    h = (h ^ key[i]) * 0x100000001b3ULL;
  }
  // Finalize: open addressing needs the high bits mixed down.
  h ^= h >> 33;
  return h;
}

uint32_t GroupKeyIndex::SlotFor(const uint32_t* key) {
  if ((num_slots_ + 1) * 4 >= buckets_.size() * 3) {
    Rehash(buckets_.size() * 2);
  }
  size_t b = static_cast<size_t>(HashKey(key)) & mask_;
  while (true) {
    const uint32_t entry = buckets_[b];
    if (entry == 0) {
      const uint32_t slot = static_cast<uint32_t>(num_slots_++);
      keys_.insert(keys_.end(), key, key + arity_);
      buckets_[b] = slot + 1;
      return slot;
    }
    const uint32_t slot = entry - 1;
    if (std::memcmp(KeyAt(slot), key, arity_ * sizeof(uint32_t)) == 0) {
      return slot;
    }
    b = (b + 1) & mask_;
  }
}

void GroupKeyIndex::Rehash(size_t new_buckets) {
  buckets_.assign(new_buckets, 0);
  mask_ = new_buckets - 1;
  for (size_t slot = 0; slot < num_slots_; ++slot) {
    size_t b = static_cast<size_t>(HashKey(KeyAt(static_cast<uint32_t>(slot)))) &
               mask_;
    while (buckets_[b] != 0) b = (b + 1) & mask_;
    buckets_[b] = static_cast<uint32_t>(slot) + 1;
  }
}

}  // namespace scalewall::vec
