// Group-by slot computation for the vectorized aggregation kernels.
//
// A chunk's surviving rows are mapped to dense *slots* — small integers
// indexing a flat array of aggregation states — in one of two ways:
//
//  * DirectLayout: when the product of the group columns' cardinalities
//    is small, the slot is the mixed-radix number of the group values
//    (one multiply-add per column, no hashing, no key storage);
//  * GroupKeyIndex: otherwise, an open-addressing hash table assigns
//    slots in first-seen order and stores the flat keys for decode.
//
// Both produce a bijection slot <-> group key, so flushing slots into a
// sorted result map reconstructs exactly the interpreter's group set.

#ifndef SCALEWALL_VEC_GROUP_H_
#define SCALEWALL_VEC_GROUP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scalewall::vec {

// Mixed-radix layout over group columns with known cardinalities.
struct DirectLayout {
  // Per-column multiplier; slot = sum_i value_i * stride[i]. Built so
  // the *last* column is the least-significant digit, matching the
  // lexicographic order of group keys.
  std::vector<uint64_t> strides;
  std::vector<uint32_t> cards;
  uint64_t total_slots = 1;

  // Builds the layout; returns false (leaving the layout unusable) when
  // the slot space would exceed `max_slots`.
  bool Build(const std::vector<uint32_t>& cardinalities, uint64_t max_slots);

  // Reconstructs the group values for `slot` into `key` (sized to arity).
  void DecodeSlot(uint64_t slot, uint32_t* key) const {
    for (size_t i = 0; i < strides.size(); ++i) {
      key[i] = static_cast<uint32_t>((slot / strides[i]) % cards[i]);
    }
  }
};

// Accumulates `col[rows[i]] * stride` into slots[i] for every selected
// row (one group column's contribution to the mixed-radix slot).
void SlotAccumulate(const uint32_t* col, const uint32_t* rows, size_t n,
                    uint64_t stride, uint32_t* slots);

// Same over a dense row range [begin, begin + n) with no selection.
void SlotAccumulateDense(const uint32_t* col, uint32_t begin, size_t n,
                         uint64_t stride, uint32_t* slots);

// Variants over already-gathered value arrays (join attributes): values
// are aligned with the selection, not indexed through it.
void SlotAccumulateGathered(const uint32_t* values, size_t n,
                            uint64_t stride, uint32_t* slots);

// Open-addressing map from flat group keys (arity uint32s) to dense
// slot ids assigned in first-seen order.
class GroupKeyIndex {
 public:
  explicit GroupKeyIndex(size_t arity);

  // Returns the slot for `key` (arity values), inserting if new.
  uint32_t SlotFor(const uint32_t* key);

  size_t num_slots() const { return num_slots_; }
  size_t arity() const { return arity_; }
  // Flat key stored for `slot` (arity values).
  const uint32_t* KeyAt(uint32_t slot) const {
    return keys_.data() + static_cast<size_t>(slot) * arity_;
  }

 private:
  void Rehash(size_t new_buckets);
  uint64_t HashKey(const uint32_t* key) const;

  size_t arity_;
  size_t num_slots_ = 0;
  std::vector<uint32_t> keys_;     // num_slots_ * arity_ values
  std::vector<uint32_t> buckets_;  // slot + 1, 0 = empty; power-of-two
  size_t mask_ = 0;
};

}  // namespace scalewall::vec

#endif  // SCALEWALL_VEC_GROUP_H_
