// Selection vectors: the currency of the vectorized scan kernels.
//
// A selection vector is a strictly ascending list of row indices that
// survived every predicate applied so far. Kernels either *initialize* a
// selection (from a raw column and a predicate, or as the identity over a
// row range) or *refine* one in place (each refinement compacts the
// surviving indices to the front). Because every kernel preserves the
// ascending order, downstream aggregation kernels visit rows in exactly
// the order a row-at-a-time interpreter would — which is what makes the
// vectorized engine bit-identical to the interpreted oracle even for
// non-associative float accumulation.

#ifndef SCALEWALL_VEC_SELVEC_H_
#define SCALEWALL_VEC_SELVEC_H_

#include <cstdint>
#include <vector>

namespace scalewall::vec {

// Row index within one data chunk (brick row ranges are < 2^32).
using RowIndex = uint32_t;

// Ascending list of surviving row indices.
using SelVec = std::vector<RowIndex>;

// Initializes `sel` to the identity selection [begin, end).
inline void SelIota(RowIndex begin, RowIndex end, SelVec& sel) {
  sel.clear();
  sel.reserve(end - begin);
  for (RowIndex i = begin; i < end; ++i) sel.push_back(i);
}

}  // namespace scalewall::vec

#endif  // SCALEWALL_VEC_SELVEC_H_
