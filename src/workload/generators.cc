#include "workload/generators.h"

#include <algorithm>
#include <cmath>

namespace scalewall::workload {

cubrick::TableSchema MakeSchema(int dims, uint32_t cardinality,
                                uint32_t range_size, int metrics) {
  cubrick::TableSchema schema;
  for (int d = 0; d < dims; ++d) {
    schema.dimensions.push_back(cubrick::Dimension{
        "dim" + std::to_string(d), cardinality, range_size});
  }
  for (int m = 0; m < metrics; ++m) {
    schema.metrics.push_back(cubrick::Metric{"metric" + std::to_string(m)});
  }
  return schema;
}

cubrick::TableSchema AdEventsSchema() {
  cubrick::TableSchema schema;
  schema.dimensions = {
      cubrick::Dimension{"day", 365, 16},
      cubrick::Dimension{"country", 200, 32},
      cubrick::Dimension{"platform", 8, 4},
      cubrick::Dimension{"campaign", 4096, 512},
  };
  schema.metrics = {
      cubrick::Metric{"impressions"},
      cubrick::Metric{"clicks"},
      cubrick::Metric{"spend"},
  };
  return schema;
}

std::vector<TableSpec> GenerateTablePopulation(
    const TablePopulationOptions& options, Rng& rng) {
  std::vector<TableSpec> tables;
  tables.reserve(options.num_tables);
  for (int i = 0; i < options.num_tables; ++i) {
    double rows = rng.NextLognormal(options.log_mean, options.log_sigma);
    uint64_t count = static_cast<uint64_t>(
        std::min(rows, static_cast<double>(options.max_rows)));
    if (count == 0) count = 1;
    tables.push_back(
        TableSpec{options.name_prefix + std::to_string(i), count});
  }
  return tables;
}

std::vector<cubrick::Row> GenerateRows(const cubrick::TableSchema& schema,
                                       uint64_t count, Rng& rng,
                                       RowGenOptions options) {
  std::vector<cubrick::Row> rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    cubrick::Row row;
    row.dims.reserve(schema.dimensions.size());
    for (size_t d = 0; d < schema.dimensions.size(); ++d) {
      const cubrick::Dimension& dim = schema.dimensions[d];
      uint32_t v;
      if (d == 0 && options.recency_skew && rng.NextBool(0.5)) {
        // Half the rows land in the most recent 10% of the first
        // dimension ("more recently loaded data is usually queried more
        // frequently than old data").
        uint32_t recent = std::max<uint32_t>(1, dim.cardinality / 10);
        v = dim.cardinality - 1 -
            static_cast<uint32_t>(rng.NextBounded(recent));
      } else if (options.zipf_s > 0) {
        v = static_cast<uint32_t>(
            rng.NextZipf(dim.cardinality, options.zipf_s));
      } else {
        v = static_cast<uint32_t>(rng.NextBounded(dim.cardinality));
      }
      row.dims.push_back(v);
    }
    row.metrics.reserve(schema.metrics.size());
    for (size_t m = 0; m < schema.metrics.size(); ++m) {
      row.metrics.push_back(std::floor(rng.NextLognormal(2.0, 1.0)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

cubrick::Query GenerateQuery(const std::string& table,
                             const cubrick::TableSchema& schema, Rng& rng,
                             QueryGenOptions options) {
  cubrick::Query query;
  query.table = table;
  for (size_t d = 0; d < schema.dimensions.size(); ++d) {
    if (!rng.NextBool(options.filter_probability)) continue;
    const cubrick::Dimension& dim = schema.dimensions[d];
    uint32_t lo;
    uint32_t width;
    if (options.recency_bias && d == 0) {
      // Dashboards overwhelmingly query recent time ranges.
      uint32_t recent = std::max<uint32_t>(
          1, static_cast<uint32_t>(static_cast<double>(dim.cardinality) *
                                   options.recency_fraction));
      lo = dim.cardinality - recent;
      width = recent - 1;
    } else {
      lo = static_cast<uint32_t>(rng.NextBounded(dim.cardinality));
      width = static_cast<uint32_t>(
          rng.NextBounded(std::max<uint32_t>(1, dim.cardinality / 4)));
    }
    uint32_t hi = std::min<uint64_t>(static_cast<uint64_t>(lo) + width,
                                     dim.cardinality - 1);
    query.filters.push_back(
        cubrick::FilterRange{static_cast<int>(d), lo, hi});
  }
  if (rng.NextBool(options.group_by_probability)) {
    query.group_by.push_back(static_cast<int>(
        rng.NextBounded(schema.dimensions.size())));
  }
  int metric = schema.metrics.empty()
                   ? 0
                   : static_cast<int>(rng.NextBounded(schema.metrics.size()));
  query.aggregations.push_back(cubrick::Aggregation{metric, cubrick::AggOp::kSum});
  query.aggregations.push_back(cubrick::Aggregation{0, cubrick::AggOp::kCount});
  return query;
}

cubrick::Query FixedProbeQuery(const std::string& table,
                               const cubrick::TableSchema& schema) {
  cubrick::Query query;
  query.table = table;
  const cubrick::Dimension& dim = schema.dimensions[0];
  // A selective filter over the top quarter of the first dimension.
  query.filters.push_back(cubrick::FilterRange{
      0, dim.cardinality - std::max<uint32_t>(1, dim.cardinality / 4),
      dim.cardinality - 1});
  query.aggregations.push_back(cubrick::Aggregation{0, cubrick::AggOp::kSum});
  return query;
}

std::vector<Arrival> GenerateOpenLoopArrivals(
    const std::vector<TenantLoadSpec>& tenants, SimDuration horizon,
    Rng& rng) {
  std::vector<Arrival> arrivals;
  for (size_t i = 0; i < tenants.size(); ++i) {
    const TenantLoadSpec& spec = tenants[i];
    if (spec.rate <= 0.0) continue;
    // Each tenant's process gets its own stream keyed by index, so the
    // schedules compose: tenant k's arrival times are identical whether
    // it runs alone or alongside any other mix.
    Rng stream = rng.Fork(/*stream=*/0xA881 + i);
    double t_seconds = 0.0;
    const double horizon_seconds =
        static_cast<double>(horizon) / static_cast<double>(kSecond);
    while (true) {
      t_seconds += stream.NextExponential(spec.rate);
      if (t_seconds >= horizon_seconds) break;
      Arrival arrival;
      arrival.at = static_cast<SimTime>(t_seconds * kSecond);
      arrival.tenant_index = i;
      arrivals.push_back(arrival);
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              // Tenant index breaks sim-time ties so the merged order is
              // total (and therefore reproducible).
              return a.at != b.at ? a.at < b.at
                                  : a.tenant_index < b.tenant_index;
            });
  for (size_t i = 0; i < arrivals.size(); ++i) arrivals[i].sequence = i;
  return arrivals;
}

}  // namespace scalewall::workload
