// Synthetic workload generators.
//
// The paper's evaluation runs against production workloads we cannot
// ship: thousands of multi-tenant tables with a heavy-tailed size
// distribution (Figure 4b), a skewed block-access pattern separating hot
// and cold data (Figure 4e), and a fixed dashboard query fired every
// 500 ms for a week (Figure 5). These generators produce the closest
// synthetic equivalents, parameterized so benches can sweep them.

#ifndef SCALEWALL_WORKLOAD_GENERATORS_H_
#define SCALEWALL_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "admit/admit.h"
#include "common/random.h"
#include "cubrick/query.h"
#include "cubrick/schema.h"

namespace scalewall::workload {

// --- schemas ---

// A dashboard-style schema: `dims` dimensions with the given cardinality
// and range size, `metrics` metric columns.
cubrick::TableSchema MakeSchema(int dims, uint32_t cardinality,
                                uint32_t range_size, int metrics);

// The quickstart "ad events" schema used by examples: dimensions
// (day, country, platform, campaign) and metrics (impressions, clicks,
// spend).
cubrick::TableSchema AdEventsSchema();

// --- tables ---

// Heavy-tailed multi-tenant table population: row counts drawn lognormal
// so that "the vast majority of tables ... never hit the size threshold"
// while ~10% repartition (Section IV-B).
struct TablePopulationOptions {
  int num_tables = 1000;
  // exp(mu) is the median row count.
  double log_mean = 8.5;
  double log_sigma = 1.8;
  uint64_t max_rows = 6000000;  // the paper caps dataset size (~1TB)
  std::string name_prefix = "tenant_table_";
};

struct TableSpec {
  std::string name;
  uint64_t rows;
};

std::vector<TableSpec> GenerateTablePopulation(
    const TablePopulationOptions& options, Rng& rng);

// --- rows ---

struct RowGenOptions {
  // Zipf exponent for dimension-value skew (0 = uniform).
  double zipf_s = 1.05;
  // Fraction of rows concentrated in the most recent "day" dimension
  // bucket when the schema's first dimension models time.
  bool recency_skew = false;
};

// Generates `count` rows valid under `schema`.
std::vector<cubrick::Row> GenerateRows(const cubrick::TableSchema& schema,
                                       uint64_t count, Rng& rng,
                                       RowGenOptions options = {});

// --- queries ---

struct QueryGenOptions {
  // Probability a query carries a range filter on each dimension.
  double filter_probability = 0.5;
  // Probability of grouping by some dimension.
  double group_by_probability = 0.5;
  // With recency bias, filters concentrate on high dimension values
  // (recent data), producing the hot/cold separation of Figure 4e.
  bool recency_bias = false;
  double recency_fraction = 0.2;  // filters target the top 20% of values
};

// A random dashboard aggregation over `table`.
cubrick::Query GenerateQuery(const std::string& table,
                             const cubrick::TableSchema& schema, Rng& rng,
                             QueryGenOptions options = {});

// The fixed "simple query" of the fan-out experiment (Figure 5): a global
// SUM with one selective filter.
cubrick::Query FixedProbeQuery(const std::string& table,
                               const cubrick::TableSchema& schema);

// --- open-loop multi-tenant load (admission-control experiments) ---

// One tenant's open-loop traffic: queries arrive Poisson at `rate` per
// second regardless of how the backend is doing — the arrival process
// never slows down to match service capacity, which is exactly what
// makes open-loop overload collapse (and admission control necessary).
struct TenantLoadSpec {
  std::string tenant;
  // Mean arrivals per second.
  double rate = 1.0;
  admit::Priority priority = admit::Priority::kInteractive;
  // Fair-share weight this tenant is configured with at the proxy.
  double weight = 1.0;
};

// One scheduled submission of the generated arrival process.
struct Arrival {
  SimTime at = 0;
  // Index into the TenantLoadSpec vector the schedule was built from.
  size_t tenant_index = 0;
  // Global sequence number in arrival order (deterministic query pick).
  uint64_t sequence = 0;
};

// Merges every tenant's Poisson process into one time-ordered arrival
// schedule covering [0, horizon). Deterministic for a given rng state;
// each tenant draws from its own forked stream so adding a tenant never
// perturbs the others' schedules.
std::vector<Arrival> GenerateOpenLoopArrivals(
    const std::vector<TenantLoadSpec>& tenants, SimDuration horizon,
    Rng& rng);

}  // namespace scalewall::workload

#endif  // SCALEWALL_WORKLOAD_GENERATORS_H_
