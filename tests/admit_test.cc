// Unit tests for scalewall::admit: the weighted fair-share math, the
// windowed service-time estimator, and the admission controller's
// budget accounting, shedding tiers, and deadline-aware rejection.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "admit/admit.h"
#include "common/time.h"

namespace scalewall::admit {
namespace {

// --- weighted max-min fair shares ---

TEST(WeightedFairSharesTest, SplitsByWeightWhenAllSaturated) {
  std::vector<double> shares = WeightedFairShares(
      24.0, {{2.0, 100.0}, {1.0, 100.0}, {1.0, 100.0}});
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_DOUBLE_EQ(shares[0], 12.0);
  EXPECT_DOUBLE_EQ(shares[1], 6.0);
  EXPECT_DOUBLE_EQ(shares[2], 6.0);
}

TEST(WeightedFairSharesTest, RepoursDemandCappedSlack) {
  // The first request only wants 2 of its 5-slot entitlement; the
  // remainder is re-poured over the unsatisfied request.
  std::vector<double> shares =
      WeightedFairShares(10.0, {{1.0, 2.0}, {1.0, 100.0}});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0], 2.0);
  EXPECT_DOUBLE_EQ(shares[1], 8.0);
}

TEST(WeightedFairSharesTest, NeverExceedsDemandOrCapacity) {
  std::vector<double> shares =
      WeightedFairShares(10.0, {{1.0, 3.0}, {1.0, 3.0}});
  EXPECT_DOUBLE_EQ(shares[0], 3.0);
  EXPECT_DOUBLE_EQ(shares[1], 3.0);
  EXPECT_TRUE(WeightedFairShares(10.0, {}).empty());
  shares = WeightedFairShares(0.0, {{1.0, 5.0}});
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_DOUBLE_EQ(shares[0], 0.0);
}

// --- service-time estimator ---

TEST(ServiceTimeEstimatorTest, ReturnsSeedUntilFirstSample) {
  ServiceTimeEstimator est(/*window=*/4, /*seed=*/25 * kMillisecond);
  EXPECT_EQ(est.Predict(), 25 * kMillisecond);
  est.Record(5 * kMillisecond);
  EXPECT_EQ(est.Predict(), 5 * kMillisecond);
}

TEST(ServiceTimeEstimatorTest, ConvergesToWindowMean) {
  ServiceTimeEstimator est(/*window=*/4, /*seed=*/kMillisecond);
  // Fill the window with 10 ms, then overwrite it with 20 ms samples:
  // the sliding window must forget the old regime entirely.
  for (int i = 0; i < 4; ++i) est.Record(10 * kMillisecond);
  EXPECT_EQ(est.Predict(), 10 * kMillisecond);
  for (int i = 0; i < 4; ++i) est.Record(20 * kMillisecond);
  EXPECT_EQ(est.Predict(), 20 * kMillisecond);
  EXPECT_EQ(est.samples(), 4u);
  // A mixed window predicts the mean of what it holds.
  est.Record(40 * kMillisecond);
  EXPECT_EQ(est.Predict(), 25 * kMillisecond);
}

// --- admission controller ---

RequestInfo At(SimTime now, const std::string& tenant = "",
               Priority priority = Priority::kInteractive) {
  RequestInfo info;
  info.now = now;
  info.tenant = tenant;
  info.priority = priority;
  return info;
}

TEST(AdmissionControllerTest, AdmitsFreelyBelowConcurrencyBudget) {
  AdmitOptions options;
  options.max_concurrency = 4;
  AdmissionController admit(options);
  for (int i = 0; i < 4; ++i) {
    Decision d = admit.Admit(At(0));
    EXPECT_TRUE(d.admitted);
    EXPECT_EQ(d.queue_wait, 0);
    EXPECT_NE(d.ticket, 0u);
  }
  EXPECT_EQ(admit.inflight(), 4);
  EXPECT_EQ(admit.stats().admitted.value(), 4);
}

TEST(AdmissionControllerTest, QueuesThenShedsWhenBudgetExhausted) {
  AdmitOptions options;
  options.max_concurrency = 2;
  options.max_queued = 2;
  AdmissionController admit(options);
  for (int i = 0; i < 2; ++i) EXPECT_TRUE(admit.Admit(At(0)).admitted);
  // Slots full: the next two queue virtually (positive wait).
  for (int i = 0; i < 2; ++i) {
    Decision d = admit.Admit(At(0));
    EXPECT_TRUE(d.admitted);
    EXPECT_GT(d.queue_wait, 0);
  }
  // Budget (2 running + 2 queued) exhausted. A sole tenant owns the
  // whole budget, so the reason is queue-full, not fair-share.
  Decision d = admit.Admit(At(0));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kQueueFull);
  EXPECT_GE(d.retry_after, kMillisecond);
  EXPECT_EQ(admit.stats().queued.value(), 2);
}

TEST(AdmissionControllerTest, BytesBudgetAccounting) {
  AdmitOptions options;
  options.max_concurrency = 16;
  options.default_query_bytes = 60;
  options.max_inflight_bytes = 100;
  AdmissionController admit(options);
  EXPECT_TRUE(admit.Admit(At(0)).admitted);
  EXPECT_EQ(admit.inflight_bytes(), 60u);
  Decision d = admit.Admit(At(0));  // 120 > 100
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kBytesLimit);
  // An explicit (smaller) byte cost still fits.
  RequestInfo small = At(0);
  small.bytes = 40;
  EXPECT_TRUE(admit.Admit(small).admitted);
  EXPECT_EQ(admit.inflight_bytes(), 100u);
}

TEST(AdmissionControllerTest, PerTenantCapsOverrideDefaults) {
  AdmitOptions options;
  options.max_concurrency = 16;
  AdmissionController admit(options);
  TenantOptions capped;
  capped.max_concurrency = 1;
  capped.max_inflight_bytes = 1 << 20;
  admit.ConfigureTenant("capped", capped);
  EXPECT_TRUE(admit.Admit(At(0, "capped")).admitted);
  Decision d = admit.Admit(At(0, "capped"));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kTenantLimit);
  // Other tenants are unaffected by the capped tenant's limits.
  EXPECT_TRUE(admit.Admit(At(0, "other")).admitted);
}

TEST(AdmissionControllerTest, TokenBucketMapsLegacyMaxQps) {
  // The legacy ProxyOptions::max_qps configuration: rate limit only,
  // no concurrency machinery.
  AdmitOptions options;
  options.max_concurrency = 0;
  options.max_rate = 2.0;
  AdmissionController admit(options);
  EXPECT_TRUE(admit.Admit(At(0)).admitted);
  EXPECT_TRUE(admit.Admit(At(0)).admitted);
  Decision d = admit.Admit(At(0));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kRateLimit);
  EXPECT_GT(d.retry_after, 0);
  // Tokens refill with the (virtual) clock.
  EXPECT_TRUE(admit.Admit(At(kSecond)).admitted);
  EXPECT_EQ(admit.stats().rejected_reason[static_cast<int>(
                RejectReason::kRateLimit)].value(),
            1);
}

TEST(AdmissionControllerTest, OverloadShedsLowerTiersFirst) {
  AdmitOptions options;
  options.max_concurrency = 16;
  options.shed_overload = {8.0, 4.0, 2.0};
  AdmissionController admit(options);
  RequestInfo info = At(0, "", Priority::kBestEffort);
  info.backend_overload = 3.0;
  Decision d = admit.Admit(info);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kOverload);
  // The same signal leaves batch and interactive traffic alone.
  info.priority = Priority::kBatch;
  EXPECT_TRUE(admit.Admit(info).admitted);
  info.priority = Priority::kInteractive;
  EXPECT_TRUE(admit.Admit(info).admitted);
  // Deep overload sheds interactive too.
  info.backend_overload = 9.0;
  d = admit.Admit(info);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kOverload);
}

TEST(AdmissionControllerTest, DeadlineAwareRejection) {
  AdmitOptions options;
  options.max_concurrency = 1;
  options.max_queued = 4;
  options.estimator_seed = kSecond;  // predicted service: 1 s
  AdmissionController admit(options);
  EXPECT_TRUE(admit.Admit(At(0)).admitted);
  // The slot frees in ~1 s; wait (1 s) + service (1 s) blows a 500 ms
  // deadline, so the query is rejected *now* rather than served late.
  RequestInfo info = At(0);
  info.deadline = 500 * kMillisecond;
  Decision d = admit.Admit(info);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kDeadline);
  EXPECT_GE(d.retry_after, kMillisecond);
  // A deadline generous enough to absorb the queue wait is admitted.
  info.deadline = 5 * kSecond;
  d = admit.Admit(info);
  EXPECT_TRUE(d.admitted);
  EXPECT_GT(d.queue_wait, 0);
}

TEST(AdmissionControllerTest, QueueWaitCapIsPerPriority) {
  AdmitOptions options;
  options.max_concurrency = 1;
  options.max_queued = 8;
  options.estimator_seed = kSecond;
  options.max_queue_wait = {2 * kSecond, 10 * kSecond, kSecond / 2};
  AdmissionController admit(options);
  EXPECT_TRUE(admit.Admit(At(0)).admitted);
  // Predicted wait ~1 s: above the best-effort cap, below the others.
  Decision d = admit.Admit(At(0, "", Priority::kBestEffort));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kQueueWait);
  EXPECT_TRUE(admit.Admit(At(0, "", Priority::kBatch)).admitted);
}

TEST(AdmissionControllerTest, OnCompleteRetimesReservation) {
  AdmitOptions options;
  options.max_concurrency = 1;
  options.max_queued = 0;
  options.estimator_seed = 10 * kSecond;  // pessimistic prediction
  AdmissionController admit(options);
  Decision a = admit.Admit(At(0));
  ASSERT_TRUE(a.admitted);
  // The query actually finished in 5 ms: its reservation moves from
  // t=10s to t=5ms, so a query arriving at t=6ms finds a free slot.
  admit.OnComplete(a.ticket, 5 * kMillisecond);
  Decision b = admit.Admit(At(6 * kMillisecond));
  EXPECT_TRUE(b.admitted);
  EXPECT_EQ(b.queue_wait, 0);
  EXPECT_EQ(admit.stats().completed.value(), 1);
}

TEST(AdmissionControllerTest, EstimatorLearnsFromCompletions) {
  AdmitOptions options;
  options.max_concurrency = 64;
  options.estimator_seed = kMillisecond;
  AdmissionController admit(options);
  for (int i = 0; i < 8; ++i) {
    Decision d = admit.Admit(At(i * kSecond));
    ASSERT_TRUE(d.admitted);
    admit.OnComplete(d.ticket, 30 * kMillisecond);
  }
  EXPECT_EQ(admit.PredictedService(), 30 * kMillisecond);
}

TEST(AdmissionControllerTest, FairShareSplitsQueueByWeight) {
  // Two tenants, weights 3:1, 4 running slots + a 4-slot wait queue,
  // all queries long-lived. The free slots admit anyone (2/2), but the
  // wait queue — which owns all future throughput — must split 3:1 by
  // weight, with every further arrival shed as over-slice.
  AdmitOptions options;
  options.max_concurrency = 4;
  options.max_queued = 4;
  TenantOptions heavy;
  heavy.weight = 3.0;
  options.tenants["a"] = heavy;
  AdmissionController admit(options);
  int admitted_a = 0;
  int admitted_b = 0;
  for (int round = 0; round < 16; ++round) {
    if (admit.Admit(At(0, "a")).admitted) ++admitted_a;
    if (admit.Admit(At(0, "b")).admitted) ++admitted_b;
  }
  // 2 running + 3 queued for a; 2 running + 1 queued for b.
  EXPECT_EQ(admitted_a, 5);
  EXPECT_EQ(admitted_b, 3);
  Decision d = admit.Admit(At(0, "b"));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kFairShare);
  // Per-tenant accounting matches.
  for (const auto& snap : admit.Tenants()) {
    if (snap.tenant == "a") {
      EXPECT_EQ(snap.inflight, 5);
      EXPECT_DOUBLE_EQ(snap.weight, 3.0);
    } else if (snap.tenant == "b") {
      EXPECT_EQ(snap.inflight, 3);
    }
  }
}

TEST(AdmissionControllerTest, IdleTenantReleasesItsShare) {
  AdmitOptions options;
  options.max_concurrency = 4;
  options.max_queued = 4;
  AdmissionController admit(options);
  // Tenant b takes its half (4 of 8)...
  std::vector<uint64_t> b_tickets;
  for (int i = 0; i < 8; ++i) {
    Decision d = admit.Admit(At(0, "b"));
    Decision a = admit.Admit(At(0, "a"));
    if (d.admitted) b_tickets.push_back(d.ticket);
    (void)a;
  }
  ASSERT_EQ(b_tickets.size(), 4u);
  // ...then finishes everything. Once its reservations lapse, tenant a
  // owns the whole budget again.
  for (uint64_t t : b_tickets) admit.OnComplete(t, kMillisecond);
  int admitted_a = 0;
  while (admit.Admit(At(kMinute, "a")).admitted) ++admitted_a;
  EXPECT_EQ(admitted_a, 8);
  EXPECT_EQ(admit.inflight(), 8);
}

TEST(AdmissionControllerTest, ZeroConcurrencyDisablesQueueMachinery) {
  AdmitOptions options;
  options.max_concurrency = 0;
  AdmissionController admit(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admit.Admit(At(0)).admitted);
  }
  EXPECT_EQ(admit.stats().rejected.value(), 0);
}

TEST(AdmissionControllerTest, ConcurrentAdmitAndCompleteAreSafe) {
  AdmitOptions options;
  options.max_concurrency = 8;
  options.max_queued = 8;
  AdmissionController admit(options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = "tenant" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        Decision d = admit.Admit(At(0, tenant));
        if (d.admitted) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          admit.OnComplete(d.ticket, kMillisecond);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every admission was balanced by a completion; the virtual clock
  // never advanced past 0, so all reservations are still open.
  EXPECT_EQ(admit.stats().admitted.value(), admitted.load());
  EXPECT_EQ(admit.stats().completed.value(), admitted.load());
  EXPECT_LE(admit.inflight(),
            options.max_concurrency + options.max_queued);
  EXPECT_GE(admitted.load(), options.max_concurrency);
}

}  // namespace
}  // namespace scalewall::admit
