// Unit tests for scalewall::cache: the cost-budgeted LRU container both
// result caches are built on, and the CachePolicy names.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "cache/lru_cache.h"

namespace scalewall::cache {
namespace {

using StringCache = LruCache<std::string, std::string>;

TEST(LruCacheTest, PutGetRoundTrip) {
  StringCache cache(100);
  EXPECT_TRUE(cache.Put("a", "alpha", 10));
  std::string out;
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, "alpha");
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 10u);
  auto snap = cache.snapshot();
  EXPECT_EQ(snap.hits, 1);
  EXPECT_EQ(snap.misses, 1);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedFirst) {
  StringCache cache(30);
  cache.Put("a", "1", 10);
  cache.Put("b", "2", 10);
  cache.Put("c", "3", 10);
  // Touch "a" so "b" becomes the LRU entry.
  std::string out;
  ASSERT_TRUE(cache.Get("a", &out));
  cache.Put("d", "4", 10);  // over budget: one eviction
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_TRUE(cache.Contains("d"));
  EXPECT_EQ(cache.snapshot().evictions, 1);
  EXPECT_LE(cache.bytes(), cache.max_bytes());
}

TEST(LruCacheTest, EvictsMultipleEntriesForOneLargeInsert) {
  StringCache cache(30);
  cache.Put("a", "1", 10);
  cache.Put("b", "2", 10);
  cache.Put("c", "3", 10);
  cache.Put("big", "4", 25);  // must push out a, b and c (LRU order)
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains("big"));
  EXPECT_EQ(cache.snapshot().evictions, 3);
}

TEST(LruCacheTest, RefusesEntriesLargerThanBudget) {
  StringCache cache(20);
  cache.Put("a", "1", 10);
  EXPECT_FALSE(cache.Put("huge", "x", 21));
  EXPECT_FALSE(cache.Contains("huge"));
  // The working set is untouched.
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_EQ(cache.snapshot().evictions, 0);
}

TEST(LruCacheTest, ZeroBudgetDisablesInsertion) {
  StringCache cache(0);
  EXPECT_FALSE(cache.Put("a", "1", 0));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ReplaceUpdatesValueAndCost) {
  StringCache cache(100);
  cache.Put("a", "old", 40);
  cache.Put("a", "new", 10);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 10u);
  std::string out;
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, "new");
}

TEST(LruCacheTest, EraseCountsAsInvalidation) {
  StringCache cache(100);
  cache.Put("a", "1", 10);
  EXPECT_TRUE(cache.Erase("a"));
  EXPECT_FALSE(cache.Erase("a"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  auto snap = cache.snapshot();
  EXPECT_EQ(snap.invalidations, 1);
  EXPECT_EQ(snap.evictions, 0);
}

TEST(LruCacheTest, ClearInvalidatesEverything) {
  StringCache cache(100);
  cache.Put("a", "1", 10);
  cache.Put("b", "2", 10);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.snapshot().invalidations, 2);
}

TEST(LruCacheTest, ByteAccountingStaysExactAcrossChurn) {
  StringCache cache(50);
  for (int i = 0; i < 100; ++i) {
    cache.Put("k" + std::to_string(i % 7), "v", 1 + (i % 13));
  }
  size_t total = 0;
  for (int i = 0; i < 7; ++i) {
    std::string out;
    if (cache.Get("k" + std::to_string(i), &out)) total += 1;
  }
  EXPECT_LE(cache.bytes(), cache.max_bytes());
  EXPECT_EQ(cache.size(), cache.snapshot().entries);
  EXPECT_EQ(cache.bytes(), cache.snapshot().bytes);
}

TEST(LruCacheTest, ConcurrentMixedOperationsSmoke) {
  StringCache cache(1000);
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &start, t] {
      while (!start.load()) {
      }
      for (int i = 0; i < 500; ++i) {
        std::string key = "k" + std::to_string((t * 31 + i) % 20);
        std::string out;
        switch (i % 4) {
          case 0:
            cache.Put(key, "v" + std::to_string(i), 10 + i % 50);
            break;
          case 1:
            cache.Get(key, &out);
            break;
          case 2:
            cache.Erase(key);
            break;
          default:
            cache.snapshot();
            break;
        }
      }
    });
  }
  start.store(true);
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.bytes(), cache.max_bytes());
  auto snap = cache.snapshot();
  EXPECT_EQ(snap.entries, cache.size());
}

TEST(CachePolicyTest, Names) {
  EXPECT_EQ(CachePolicyName(CachePolicy::kDefault), "default");
  EXPECT_EQ(CachePolicyName(CachePolicy::kBypass), "bypass");
  EXPECT_EQ(CachePolicyName(CachePolicy::kRefresh), "refresh");
  EXPECT_EQ(CachePolicyName(CachePolicy::kAllowStale), "allow_stale");
}

}  // namespace
}  // namespace scalewall::cache
