// Chaos property test: random sequences of tenant and fleet operations
// against a live deployment, checking after every step that
//
//   * any query that *succeeds* returns exactly the reference result
//     (partial answers are never silently returned — the consistency
//     guarantee that distinguishes Cubrick from ignore-stragglers systems
//     like Scuba, Section II-C);
//   * after the fleet quiesces, queries succeed again and all data is
//     intact in every region.
//
// The caching variant runs the same chaos with epoch-invalidated result
// caching enabled and additionally cross-checks every successful
// non-stale-flagged answer byte-identically against a cache-bypass
// execution of the same query: the caches must be invisible to exact
// correctness under ingestion, repartitions, migrations and failovers.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "workload/generators.h"

namespace scalewall::core {
namespace {

// Exact equality of two merged results (keys and raw AggState values).
bool SameResult(const cubrick::QueryResult& a, const cubrick::QueryResult& b) {
  if (a.num_groups() != b.num_groups()) return false;
  auto it_b = b.groups().begin();
  for (auto it_a = a.groups().begin(); it_a != a.groups().end();
       ++it_a, ++it_b) {
    if (it_a->first != it_b->first) return false;
    if (it_a->second.size() != it_b->second.size()) return false;
    for (size_t i = 0; i < it_a->second.size(); ++i) {
      const cubrick::AggState& x = it_a->second[i];
      const cubrick::AggState& y = it_b->second[i];
      if (x.sum != y.sum || x.count != y.count || x.min != y.min ||
          x.max != y.max) {
        return false;
      }
    }
  }
  return true;
}

void RunChaos(uint64_t seed, bool caching) {
  DeploymentOptions options;
  options.seed = seed;
  options.topology.regions = 3;
  options.topology.racks_per_region = 3;
  options.topology.servers_per_rack = 4;  // 36 servers
  options.max_shards = 10000;
  options.per_host_failure_probability = 0.0;  // failures come from ops
  options.enable_failure_injector = true;
  options.failure_injector.enable_drains = false;
  options.failure_injector.mean_time_between_failures = 100000 * kDay;
  // Repairs must fit inside the final quiesce window: with enough killed
  // servers a region can transiently have fewer healthy hosts than a
  // table has partitions, which correctly blocks placement until repairs
  // return capacity.
  options.failure_injector.mean_repair_time = 1 * kHour;
  options.enable_result_caching = caching;
  Deployment dep(options);

  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  Rng rng(seed * 7919 + 1);

  // A replicated dimension table mapping dim1 codes (0..63) to one of 4
  // groups; join queries run alongside plain ones throughout the chaos.
  ASSERT_TRUE(dep.CreateDimensionTable("groups", 64,
                                       {cubrick::Dimension{"bucket", 4, 1}})
                  .ok());
  std::vector<cubrick::DimensionEntry> entries;
  for (uint32_t k = 0; k < 64; ++k) {
    entries.push_back(cubrick::DimensionEntry{k, {k % 4}});
  }
  ASSERT_TRUE(dep.LoadDimensionEntries("groups", entries).ok());

  // Reference model: per table, total row count and metric sum.
  struct Reference {
    double count = 0;
    double sum = 0;
  };
  std::map<std::string, Reference> reference;
  int next_table = 0;

  auto check_query = [&](const std::string& table) {
    cubrick::Query q;
    q.table = table;
    q.aggregations = {cubrick::Aggregation{0, cubrick::AggOp::kCount},
                      cubrick::Aggregation{0, cubrick::AggOp::kSum}};
    // Half the probes additionally join against the replicated dimension
    // table (dim1 -> bucket); the join must never change totals (every
    // key is mapped) nor ever return partial data.
    bool joined = rng.NextBool(0.5);
    if (joined) {
      q.joins = {cubrick::Join{1, "groups", 0}};
      q.group_by_joins = {0};
    }
    cubrick::QueryRequest request(
        q, static_cast<cluster::RegionId>(rng.NextBounded(3)));
    if (caching && rng.NextBool(0.3)) {
      request.cache_policy = cache::CachePolicy::kAllowStale;
    }
    auto outcome = dep.Query(cubrick::QueryRequest(request));
    if (!outcome.status.ok()) return false;  // failing is allowed mid-chaos
    if (outcome.served_stale) {
      // The one path allowed to lag the data — and only when asked for.
      EXPECT_EQ(request.cache_policy, cache::CachePolicy::kAllowStale);
      return true;
    }
    if (caching) {
      // Every successful non-stale answer must be byte-identical to a
      // cache-bypass execution of the same query, mid-chaos included.
      cubrick::QueryRequest bypass = request;
      bypass.cache_policy = cache::CachePolicy::kBypass;
      auto uncached = dep.Query(cubrick::QueryRequest(bypass));
      if (uncached.status.ok()) {
        EXPECT_TRUE(SameResult(outcome.result, uncached.result))
            << "cached answer diverged from re-execution for " << table;
      }
    }
    // Half the probes additionally re-run on the interpreted scan oracle
    // (cache bypassed so it really scans): the vectorized default must
    // stay byte-identical mid-chaos — across compression states,
    // repartitions, failovers and joins.
    if (rng.NextBool(0.5)) {
      cubrick::QueryRequest oracle = request;
      oracle.cache_policy = cache::CachePolicy::kBypass;
      oracle.scan_path = exec::ScanPath::kInterpreted;
      auto interpreted = dep.Query(cubrick::QueryRequest(oracle));
      if (interpreted.status.ok()) {
        EXPECT_TRUE(SameResult(outcome.result, interpreted.result))
            << "vectorized answer diverged from the interpreted oracle for "
            << table << (joined ? " (joined)" : "");
      }
    }
    const Reference& ref = reference.at(table);
    if (ref.count == 0) {
      EXPECT_EQ(outcome.result.num_groups(), 0u) << table;
      return true;
    }
    double count = 0, sum = 0;
    for (const auto& [key, states] : outcome.result.groups()) {
      count += states[0].Finalize(cubrick::AggOp::kCount);
      sum += states[1].Finalize(cubrick::AggOp::kSum);
    }
    EXPECT_DOUBLE_EQ(count, ref.count)
        << "partial or stale answer for " << table
        << (joined ? " (joined)" : "");
    EXPECT_DOUBLE_EQ(sum, ref.sum)
        << "partial or stale answer for " << table
        << (joined ? " (joined)" : "");
    return true;
  };

  const int kOps = 120;
  for (int op = 0; op < kOps; ++op) {
    switch (rng.NextBounded(10)) {
      case 0: {  // create a tenant
        if (reference.size() >= 8) break;
        std::string name = "chaos_" + std::to_string(next_table++);
        if (dep.CreateTable(name, schema).ok()) {
          reference[name] = Reference{};
        }
        break;
      }
      case 1:
      case 2: {  // load rows into a random tenant
        if (reference.empty()) break;
        auto it = reference.begin();
        std::advance(it, rng.NextBounded(reference.size()));
        auto rows = workload::GenerateRows(
            schema, 200 + rng.NextBounded(800), rng);
        if (dep.LoadRows(it->first, rows).ok()) {
          for (const auto& row : rows) {
            it->second.count += 1;
            it->second.sum += row.metrics[0];
          }
        }
        break;
      }
      case 3: {  // kill a random server (regions 0-1 only)
        // Replication factor 3 (one copy per region) survives any two
        // concurrent regional failures; losing all three owners of a
        // partition inside one repair window is genuine, accepted data
        // loss (production re-ingests from upstream). The paper's
        // disaster model (Section IV-D) likewise assumes at least one
        // healthy region — so hardware chaos here spares region 2.
        auto servers = dep.cluster().AllServers();
        cluster::ServerId victim = servers[rng.NextBounded(servers.size())];
        if (dep.cluster().Get(victim).region != 2 &&
            dep.cluster().Get(victim).health ==
                cluster::ServerHealth::kHealthy) {
          dep.failure_injector()->FailServer(victim);
        }
        break;
      }
      case 4: {  // drain a random server for maintenance
        auto servers = dep.cluster().AllServers();
        cluster::ServerId victim = servers[rng.NextBounded(servers.size())];
        if (dep.cluster().Get(victim).health ==
            cluster::ServerHealth::kHealthy) {
          dep.cluster().SetHealth(victim, cluster::ServerHealth::kDraining);
          // Automation returns it later.
          SimDuration hold = (1 + rng.NextBounded(30)) * kMinute;
          dep.simulation().ScheduleAfter(hold, [&dep, victim] {
            if (dep.cluster().Get(victim).health ==
                cluster::ServerHealth::kDraining) {
              dep.cluster().SetHealth(victim,
                                      cluster::ServerHealth::kHealthy);
            }
          });
        }
        break;
      }
      case 6: {  // resize the fleet: add servers or decommission one
        if (rng.NextBool(0.5)) {
          dep.AddServers(static_cast<cluster::RegionId>(rng.NextBounded(3)),
                         1 + static_cast<int>(rng.NextBounded(2)));
        } else {
          auto servers = dep.cluster().AllServers();
          cluster::ServerId victim =
              servers[rng.NextBounded(servers.size())];
          // Keep regions comfortably above the 8-partition floor.
          if (dep.cluster()
                  .ServersInRegion(dep.cluster().Get(victim).region)
                  .size() > 10) {
            dep.DecommissionServer(victim);
          }
        }
        break;
      }
      case 5: {  // repartition a quiesced tenant
        if (reference.empty()) break;
        auto it = reference.begin();
        std::advance(it, rng.NextBounded(reference.size()));
        auto info = dep.catalog().GetTable(it->first);
        if (info.ok() && info->num_partitions <= 16) {
          dep.Repartition(it->first, info->num_partitions * 2);
        }
        break;
      }
      default: {  // let time pass
        dep.RunFor((1 + rng.NextBounded(120)) * kSecond);
        break;
      }
    }
    // Probe a random existing tenant after every operation.
    if (!reference.empty()) {
      auto it = reference.begin();
      std::advance(it, rng.NextBounded(reference.size()));
      check_query(it->first);
    }
  }

  // Quiesce: repairs complete, failovers finish, discovery propagates.
  dep.RunFor(6 * kHour);
  for (const auto& [table, ref] : reference) {
    bool ok = false;
    // All three regions must answer, each with the exact totals.
    for (cluster::RegionId region = 0; region < 3; ++region) {
      cubrick::Query q;
      q.table = table;
      q.aggregations = {cubrick::Aggregation{0, cubrick::AggOp::kCount},
                        cubrick::Aggregation{0, cubrick::AggOp::kSum}};
      auto outcome = dep.Query(cubrick::QueryRequest(q, region));
      ASSERT_TRUE(outcome.status.ok())
          << table << " in region " << region << ": " << outcome.status;
      if (ref.count > 0) {
        EXPECT_DOUBLE_EQ(
            *outcome.result.Value({}, 0, cubrick::AggOp::kCount), ref.count)
            << table << " via region " << region;
      }
      ok = true;
    }
    EXPECT_TRUE(ok);
  }
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, RandomOperationsPreserveConsistency) {
  RunChaos(GetParam(), /*caching=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15, 16));

// Same chaos, with both result caches on and byte-identical
// cross-checks against bypass executions after every probe.
class ChaosCacheTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosCacheTest, CachingPreservesExactCorrectness) {
  RunChaos(GetParam(), /*caching=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosCacheTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Overload chaos: a hot tenant floods an admission-controlled
// deployment at many times its fair rate while servers fail and repair
// underneath. Admission may shed at the door, but it must never starve
// what it admits: every outcome — served, shed, or failed — returns
// within a bounded time, and the well-behaved tenants keep getting real
// goodput through both the flood and the failures.
TEST(ChaosOverloadTest, AdmittedQueriesAreNeverStarved) {
  DeploymentOptions options;
  options.seed = 17;
  options.topology.regions = 1;
  options.topology.racks_per_region = 4;
  options.topology.servers_per_rack = 4;  // 16 servers
  options.default_partitions = 8;
  options.repartition_threshold_rows = 1u << 30;
  options.per_host_failure_probability = 0.0;  // failures are injected
  options.enable_failure_injector = true;
  options.failure_injector.enable_drains = false;
  options.failure_injector.mean_time_between_failures = 100000 * kDay;
  options.failure_injector.mean_repair_time = 5 * kSecond;
  options.latency.median = 60 * kMillisecond;
  options.latency.sigma = 0.3;
  options.virtual_scan_slots = 6;
  options.proxy_options.enable_admission = true;
  options.proxy_options.admission.max_concurrency = 10;
  options.proxy_options.admission.max_queued = 14;
  // Interactive traffic carries a deadline; it both engages the
  // deadline-aware admission path and bounds how long execution may
  // retry through the injected failures.
  options.proxy_options.default_deadline = 2 * kSecond;
  Deployment dep(options);

  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("events", schema).ok());
  Rng rng(4242);
  ASSERT_TRUE(
      dep.LoadRows("events", workload::GenerateRows(schema, 4000, rng)).ok());
  dep.RunFor(10 * kSecond);  // discovery/LB settle

  // One flood tenant at ~10x the rate of each of two normal tenants,
  // all with equal weights: without fair queueing the flood would own
  // every slot.
  std::vector<workload::TenantLoadSpec> tenants(3);
  tenants[0].tenant = "flood";
  tenants[0].rate = 60.0;
  tenants[1].tenant = "norm1";
  tenants[1].rate = 6.0;
  tenants[2].tenant = "norm2";
  tenants[2].rate = 6.0;
  const SimDuration horizon = 12 * kSecond;
  auto arrivals = workload::GenerateOpenLoopArrivals(tenants, horizon, rng);

  // Kill a couple of healthy servers mid-flood; the repair pipeline
  // brings them back before the end of the run.
  auto servers = dep.cluster().AllServers();
  dep.simulation().ScheduleAfter(3 * kSecond, [&dep, servers] {
    dep.failure_injector()->FailServer(servers[2]);
  });
  dep.simulation().ScheduleAfter(6 * kSecond, [&dep, servers] {
    dep.failure_injector()->FailServer(servers[7]);
  });

  // No outcome may take longer than the admission queue-wait cap plus a
  // generous allowance for retried execution during failovers.
  const SimDuration starvation_bound = 6 * kSecond;
  std::vector<int64_t> served(tenants.size(), 0);
  std::vector<int64_t> rejected(tenants.size(), 0);
  const SimTime epoch = dep.now();
  for (const auto& arrival : arrivals) {
    const SimTime due = epoch + arrival.at;
    if (due > dep.now()) dep.RunFor(due - dep.now());
    cubrick::Query q;
    q.table = "events";
    q.aggregations = {cubrick::Aggregation{0, cubrick::AggOp::kSum},
                      cubrick::Aggregation{0, cubrick::AggOp::kCount}};
    cubrick::QueryRequest request(q);
    request.tenant_id = tenants[arrival.tenant_index].tenant;
    auto outcome = dep.Query(request);
    EXPECT_LE(outcome.latency, starvation_bound)
        << "outcome for " << request.tenant_id << " at t=" << arrival.at;
    if (outcome.status.ok()) {
      ++served[arrival.tenant_index];
    } else if (outcome.status.code() == StatusCode::kResourceExhausted) {
      ++rejected[arrival.tenant_index];
      // Shedding happens at the proxy door, before any backend work.
      EXPECT_EQ(outcome.latency, 0) << "rejection did backend work";
    }
  }

  // The flood is shed, not served; the normal tenants ride through both
  // the flood and the host failures with most of their queries served.
  EXPECT_GT(rejected[0], 0);
  for (size_t t = 1; t < tenants.size(); ++t) {
    const int64_t submitted = served[t] + rejected[t];
    EXPECT_GT(submitted, 0);
    EXPECT_GE(served[t], submitted / 2)
        << tenants[t].tenant << " starved: served " << served[t] << " of "
        << submitted;
  }
  // Fair queueing kept the flood from owning the backend: the normal
  // tenants' served fraction must beat the flood's.
  const double flood_frac =
      static_cast<double>(served[0]) /
      static_cast<double>(served[0] + rejected[0]);
  for (size_t t = 1; t < tenants.size(); ++t) {
    const double frac =
        static_cast<double>(served[t]) /
        static_cast<double>(served[t] + rejected[t] + 1);
    EXPECT_GT(frac, flood_frac) << tenants[t].tenant;
  }
}

}  // namespace
}  // namespace scalewall::core
