// Unit tests for the fleet model and the failure injector.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/failure_injector.h"
#include "sim/simulation.h"

namespace scalewall::cluster {
namespace {

TEST(ClusterTest, BuildTopology) {
  ClusterTopology topo;
  topo.regions = 3;
  topo.racks_per_region = 4;
  topo.servers_per_rack = 5;
  Cluster cluster = Cluster::Build(topo);
  EXPECT_EQ(cluster.size(), 60u);
  EXPECT_EQ(cluster.Regions().size(), 3u);
  for (RegionId r : cluster.Regions()) {
    EXPECT_EQ(cluster.ServersInRegion(r).size(), 20u);
    EXPECT_EQ(cluster.HealthyServers(r).size(), 20u);
  }
}

TEST(ClusterTest, RacksAreGlobal) {
  Cluster cluster = Cluster::Build({.regions = 2,
                                    .racks_per_region = 2,
                                    .servers_per_rack = 2});
  std::set<RackId> racks;
  for (ServerId id : cluster.AllServers()) {
    racks.insert(cluster.Get(id).rack);
  }
  EXPECT_EQ(racks.size(), 4u);  // rack ids unique across regions
}

TEST(ClusterTest, HealthTransitionsNotifyListeners) {
  Cluster cluster = Cluster::Build({.regions = 1,
                                    .racks_per_region = 1,
                                    .servers_per_rack = 2});
  int notifications = 0;
  ServerHealth last_new = ServerHealth::kHealthy;
  cluster.AddHealthListener(
      [&](ServerId, ServerHealth, ServerHealth new_health) {
        ++notifications;
        last_new = new_health;
      });
  EXPECT_TRUE(cluster.SetHealth(0, ServerHealth::kDown).ok());
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(last_new, ServerHealth::kDown);
  // No-op transition does not notify.
  EXPECT_TRUE(cluster.SetHealth(0, ServerHealth::kDown).ok());
  EXPECT_EQ(notifications, 1);
}

TEST(ClusterTest, SetHealthUnknownServer) {
  Cluster cluster;
  EXPECT_EQ(cluster.SetHealth(99, ServerHealth::kDown).code(),
            StatusCode::kNotFound);
}

TEST(ClusterTest, ServingAndPlaceablePredicates) {
  ServerInfo info;
  info.health = ServerHealth::kHealthy;
  EXPECT_TRUE(info.IsServing());
  EXPECT_TRUE(info.IsPlaceable());
  info.health = ServerHealth::kDraining;
  EXPECT_TRUE(info.IsServing());
  EXPECT_FALSE(info.IsPlaceable());
  info.health = ServerHealth::kDown;
  EXPECT_FALSE(info.IsServing());
  info.health = ServerHealth::kRepairing;
  EXPECT_FALSE(info.IsServing());
}

TEST(ClusterTest, RemoveRequiresDrainedOrDown) {
  Cluster cluster = Cluster::Build({.regions = 1,
                                    .racks_per_region = 1,
                                    .servers_per_rack = 2});
  EXPECT_EQ(cluster.RemoveServer(0).code(), StatusCode::kFailedPrecondition);
  cluster.SetHealth(0, ServerHealth::kDraining);
  EXPECT_TRUE(cluster.RemoveServer(0).ok());
  EXPECT_FALSE(cluster.Contains(0));
  EXPECT_EQ(cluster.RemoveServer(0).code(), StatusCode::kNotFound);
}

TEST(ClusterTest, HealthyServersExcludesUnhealthy) {
  Cluster cluster = Cluster::Build({.regions = 1,
                                    .racks_per_region = 1,
                                    .servers_per_rack = 4});
  cluster.SetHealth(1, ServerHealth::kDown);
  cluster.SetHealth(2, ServerHealth::kDraining);
  auto healthy = cluster.HealthyServers(0);
  EXPECT_EQ(healthy.size(), 2u);
  EXPECT_EQ(cluster.ServersInRegion(0).size(), 4u);
}

TEST(ClusterTest, HostnamesEncodeRegion) {
  Cluster cluster = Cluster::Build({.regions = 2,
                                    .racks_per_region = 1,
                                    .servers_per_rack = 1});
  EXPECT_NE(cluster.Get(0).hostname.find("region0"), std::string::npos);
  EXPECT_NE(cluster.Get(1).hostname.find("region1"), std::string::npos);
}

// --- failure injector ---

TEST(FailureInjectorTest, PermanentFailuresAndRepairs) {
  sim::Simulation sim(21);
  Cluster cluster = Cluster::Build({.regions = 1,
                                    .racks_per_region = 10,
                                    .servers_per_rack = 10});
  FailureInjectorOptions options;
  options.mean_time_between_failures = 10 * kDay;  // aggressive for test
  options.mean_repair_time = 1 * kDay;
  options.enable_drains = false;
  FailureInjector injector(&sim, &cluster, options);
  injector.Start();
  sim.RunFor(14 * kDay);

  // ~100 servers x 14 days / 10-day MTBF => on the order of 100+ failures.
  EXPECT_GT(injector.total_permanent_failures(), 50);
  EXPECT_LT(injector.total_permanent_failures(), 400);
  // Per-day counts sum to the total.
  int64_t sum = 0;
  for (const auto& [day, count] : injector.repairs_per_day()) {
    EXPECT_GE(day, 0);
    EXPECT_LE(day, 14);
    sum += count;
  }
  EXPECT_EQ(sum, injector.total_permanent_failures());
  // Repairs bring servers back: most of the fleet should be healthy.
  auto counts = cluster.HealthCounts();
  EXPECT_GT(counts[ServerHealth::kHealthy], 80);
}

TEST(FailureInjectorTest, FailServerImmediate) {
  sim::Simulation sim(3);
  Cluster cluster = Cluster::Build({.regions = 1,
                                    .racks_per_region = 1,
                                    .servers_per_rack = 2});
  FailureInjectorOptions options;
  options.enable_drains = false;
  options.mean_time_between_failures = 10000 * kDay;  // no spontaneous ones
  FailureInjector injector(&sim, &cluster, options);
  injector.Start();
  injector.FailServer(0);
  EXPECT_EQ(cluster.Get(0).health, ServerHealth::kDown);
  EXPECT_EQ(injector.total_permanent_failures(), 1);
  // After the repair pipeline completes, the server is healthy again.
  sim.RunFor(30 * kDay);
  EXPECT_EQ(cluster.Get(0).health, ServerHealth::kHealthy);
}

TEST(FailureInjectorTest, DrainRackTakesRackOfflineTemporarily) {
  sim::Simulation sim(3);
  Cluster cluster = Cluster::Build({.regions = 1,
                                    .racks_per_region = 2,
                                    .servers_per_rack = 3});
  FailureInjectorOptions options;
  options.enable_drains = false;
  options.mean_time_between_failures = 10000 * kDay;
  FailureInjector injector(&sim, &cluster, options);
  injector.Start();
  injector.DrainRack(/*rack=*/0, /*duration=*/2 * kHour);
  int draining = 0;
  for (ServerId id : cluster.AllServers()) {
    if (cluster.Get(id).health == ServerHealth::kDraining) ++draining;
  }
  EXPECT_EQ(draining, 3);
  sim.RunFor(3 * kHour);
  EXPECT_EQ(cluster.HealthyServers(0).size(), 6u);
}

TEST(FailureInjectorTest, DrainRegionDisasterExercise) {
  sim::Simulation sim(3);
  Cluster cluster = Cluster::Build({.regions = 2,
                                    .racks_per_region = 2,
                                    .servers_per_rack = 2});
  FailureInjectorOptions options;
  options.enable_drains = false;
  options.mean_time_between_failures = 10000 * kDay;
  FailureInjector injector(&sim, &cluster, options);
  injector.Start();
  injector.DrainRegion(/*region=*/1, /*duration=*/1 * kHour);
  EXPECT_EQ(cluster.HealthyServers(1).size(), 0u);
  EXPECT_EQ(cluster.HealthyServers(0).size(), 4u);
  sim.RunFor(2 * kHour);
  EXPECT_EQ(cluster.HealthyServers(1).size(), 4u);
}

TEST(FailureInjectorTest, PlannedDrainsOccur) {
  sim::Simulation sim(17);
  Cluster cluster = Cluster::Build({.regions = 1,
                                    .racks_per_region = 5,
                                    .servers_per_rack = 5});
  FailureInjectorOptions options;
  options.mean_time_between_failures = 10000 * kDay;
  options.mean_time_between_drains = 5 * kDay;
  options.drain_duration = 1 * kHour;
  FailureInjector injector(&sim, &cluster, options);
  injector.Start();
  sim.RunFor(10 * kDay);
  EXPECT_GT(injector.total_drains(), 10);
  // Drains are temporary: fleet largely healthy at the end.
  EXPECT_GT(cluster.HealthyServers(0).size(), 20u);
}

}  // namespace
}  // namespace scalewall::cluster
