// Unit tests for the common module: Status/Result, Rng, hashing,
// histograms, time formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "common/time.h"

namespace scalewall {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, RetryableTaxonomy) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::NonRetryable("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kUnavailable,
        StatusCode::kNonRetryable, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kDeadlineExceeded,
        StatusCode::kInternal, StatusCode::kPermissionDenied,
        StatusCode::kCancelled}) {
    EXPECT_NE(StatusCodeName(code), "UNKNOWN");
    EXPECT_FALSE(StatusCodeName(code).empty());
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  SCALEWALL_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UsesAssignOrReturn(int x) {
  SCALEWALL_ASSIGN_OR_RETURN(int doubled, Doubled(x));
  return doubled + 1;
}

TEST(ResultTest, Macros) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
  auto ok = UsesAssignOrReturn(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_EQ(UsesAssignOrReturn(-1).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(99);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(rng.NextNormal(10.0, 2.0));
  EXPECT_NEAR(stat.mean(), 10.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(3.0, 1.5), 3.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(5);
  const uint64_t n = 1000;
  int rank0 = 0, total = 100000;
  for (int i = 0; i < total; ++i) {
    uint64_t r = rng.NextZipf(n, 1.1);
    EXPECT_LT(r, n);
    if (r == 0) ++rank0;
  }
  // Rank 0 must be far more likely than uniform (0.1%).
  EXPECT_GT(rank0, total / 100);
}

TEST(RngTest, ZipfDegenerateCases) {
  Rng rng(5);
  EXPECT_EQ(rng.NextZipf(0, 1.1), 0u);
  EXPECT_EQ(rng.NextZipf(1, 1.1), 0u);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng root(42);
  Rng a = root.Fork(1);
  Rng b = root.Fork(2);
  EXPECT_NE(a.Next(), b.Next());
  // Forking is deterministic: same stream id -> same sequence.
  Rng root2(42);
  Rng a2 = root2.Fork(1);
  Rng a3(42);
  EXPECT_EQ(a3.Fork(1).Next(), a2.Next());
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

// --- hashing ---

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(HashString("dim_users#0"), HashString("dim_users#0"));
  EXPECT_NE(HashString("dim_users#0"), HashString("dim_users#1"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, IntMixAvalanche) {
  // Consecutive integers should map to very different values.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(HashInt(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(ConsistentHashRingTest, EmptyRingReturnsEmpty) {
  ConsistentHashRing ring;
  EXPECT_EQ(ring.GetBucket("key"), "");
}

TEST(ConsistentHashRingTest, SingleBucketTakesAll) {
  ConsistentHashRing ring;
  ring.AddBucket("only");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.GetBucket("key" + std::to_string(i)), "only");
  }
}

TEST(ConsistentHashRingTest, RemovalOnlyMovesAffectedKeys) {
  ConsistentHashRing ring(128);
  for (int b = 0; b < 10; ++b) ring.AddBucket("bucket" + std::to_string(b));
  std::vector<std::string> before;
  for (int i = 0; i < 1000; ++i) {
    before.push_back(ring.GetBucket("key" + std::to_string(i)));
  }
  ring.RemoveBucket("bucket3");
  int moved = 0;
  for (int i = 0; i < 1000; ++i) {
    std::string now = ring.GetBucket("key" + std::to_string(i));
    EXPECT_NE(now, "bucket3");
    if (now != before[i]) {
      ++moved;
      EXPECT_EQ(before[i], "bucket3");  // only bucket3's keys moved
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(ConsistentHashRingTest, RoughlyBalanced) {
  ConsistentHashRing ring(256);
  const int buckets = 8;
  for (int b = 0; b < buckets; ++b) {
    ring.AddBucket("bucket" + std::to_string(b));
  }
  std::map<std::string, int> counts;
  const int keys = 20000;
  for (int i = 0; i < keys; ++i) {
    counts[ring.GetBucket("key" + std::to_string(i))]++;
  }
  for (const auto& [bucket, count] : counts) {
    EXPECT_GT(count, keys / buckets / 2) << bucket;
    EXPECT_LT(count, keys / buckets * 2) << bucket;
  }
}

// --- histogram ---

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.Quantile(0.5), 42.0, 1.0);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
}

TEST(HistogramTest, QuantilesOfUniform) {
  Histogram h(0.5);
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.P50(), 5000, 150);
  EXPECT_NEAR(h.P90(), 9000, 200);
  EXPECT_NEAR(h.P99(), 9900, 250);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextLognormal(3.0, 1.0));
  double prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a, b, combined;
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    double v1 = rng.NextLognormal(2.0, 0.5);
    double v2 = rng.NextLognormal(4.0, 0.5);
    a.Add(v1);
    combined.Add(v1);
    b.Add(v2);
    combined.Add(v2);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.P50(), combined.P50(), combined.P50() * 0.02 + 1e-9);
  EXPECT_NEAR(a.P99(), combined.P99(), combined.P99() * 0.02 + 1e-9);
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(HistogramTest, UnderflowCounted) {
  Histogram h(/*min_value=*/1.0);
  h.Add(0.001);
  h.Add(10.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.Quantile(0.0), 1.0);
}

TEST(HistogramTest, SingleValueQuantileZeroNotInflated) {
  // A single-sample bucket must not interpolate to its *upper* bound:
  // q=0 over one observation is that observation, not ~1% above it.
  Histogram h;
  h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 42.0);
}

TEST(HistogramTest, UnderflowQuantileReturnsMinSeen) {
  Histogram h(/*min_value=*/1.0);
  h.Add(0.25);  // below the histogram floor
  h.Add(10.0);
  h.Add(20.0);
  // The rank-0 sample is the underflow value, not the bucket floor.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
}

TEST(HistogramTest, MergeRejectsMismatchedBucketing) {
  Histogram a(/*min_value=*/1e-6, /*growth=*/1.01);
  Histogram b(/*min_value=*/0.5, /*growth=*/1.05);
  b.Add(3.0);
  b.Add(4.0);
  // Different bucket boundaries: merging would corrupt counts, so the
  // merge is refused and the target left untouched.
  EXPECT_FALSE(a.Merge(b));
  EXPECT_EQ(a.count(), 0u);

  Histogram c(/*min_value=*/0.5, /*growth=*/1.05);
  c.Add(1.0);
  EXPECT_TRUE(c.Merge(b));
  EXPECT_EQ(c.count(), 3u);
}

TEST(RunningStatTest, Moments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma e(0.2);
  EXPECT_FALSE(e.initialized());
  for (int i = 0; i < 100; ++i) e.Add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(EwmaTest, SmoothsSpikes) {
  Ewma e(0.1);
  for (int i = 0; i < 50; ++i) e.Add(10.0);
  e.Add(1000.0);  // one spike
  EXPECT_LT(e.value(), 120.0);
  EXPECT_GT(e.value(), 10.0);
}

// --- time ---

TEST(TimeTest, Conversions) {
  EXPECT_EQ(FromMillis(1.5), 1500);
  EXPECT_EQ(FromSeconds(2.0), 2000000);
  EXPECT_DOUBLE_EQ(ToSeconds(kMinute), 60.0);
  EXPECT_DOUBLE_EQ(ToMillis(kSecond), 1000.0);
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500us");
  EXPECT_EQ(FormatDuration(1500), "1.50ms");
  EXPECT_EQ(FormatDuration(2 * kSecond), "2.00s");
  EXPECT_EQ(FormatDuration(90 * kSecond), "1.5m");
  EXPECT_EQ(FormatDuration(2 * kHour), "2.0h");
  EXPECT_EQ(FormatDuration(3 * kDay), "3.0d");
}

}  // namespace
}  // namespace scalewall
