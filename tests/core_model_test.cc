// Unit tests for the analytic scalability-wall model (Figures 1 and 2).

#include <gtest/gtest.h>

#include <limits>

#include "core/scalability_model.h"

namespace scalewall::core {
namespace {

TEST(ScalabilityModelTest, SuccessRatioBasics) {
  EXPECT_DOUBLE_EQ(QuerySuccessRatio(0.0001, 0), 1.0);
  EXPECT_DOUBLE_EQ(QuerySuccessRatio(0.0, 1000), 1.0);
  EXPECT_NEAR(QuerySuccessRatio(0.0001, 1), 0.9999, 1e-12);
  EXPECT_NEAR(QuerySuccessRatio(0.0001, 100), 0.990049, 1e-5);
  EXPECT_NEAR(QuerySuccessRatio(0.0001, 1000), 0.904833, 1e-5);
}

TEST(ScalabilityModelTest, SuccessRatioMonotoneInFanout) {
  double prev = 1.1;
  for (int n : {1, 2, 5, 10, 50, 100, 500, 1000, 5000}) {
    double s = QuerySuccessRatio(0.0005, n);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(ScalabilityModelTest, PaperHeadlineNumber) {
  // "Assuming that servers have a 0.01% chance of failure at any given
  // time, a system with 99% query success SLA will hit the scalability
  // wall at about 100 servers" (Figure 1).
  int wall = ScalabilityWall(0.0001, 0.99);
  EXPECT_GE(wall, 95);
  EXPECT_LE(wall, 105);
}

TEST(ScalabilityModelTest, WallShrinksWithWorseHardware) {
  // Figure 2: higher failure probability -> earlier wall.
  int wall_good = ScalabilityWall(0.00001, 0.99);
  int wall_mid = ScalabilityWall(0.0001, 0.99);
  int wall_bad = ScalabilityWall(0.001, 0.99);
  EXPECT_GT(wall_good, wall_mid);
  EXPECT_GT(wall_mid, wall_bad);
  EXPECT_NEAR(static_cast<double>(wall_good) / wall_mid, 10.0, 1.0);
}

TEST(ScalabilityModelTest, WallEdgeCases) {
  EXPECT_EQ(ScalabilityWall(0.0, 0.99), std::numeric_limits<int>::max());
  EXPECT_EQ(ScalabilityWall(0.5, 1.0), 1);
}

TEST(ScalabilityModelTest, WallIsTight) {
  // At the wall the SLA is violated; one server earlier it is not.
  double p = 0.0001, sla = 0.99;
  int wall = ScalabilityWall(p, sla);
  EXPECT_LT(QuerySuccessRatio(p, wall), sla);
  EXPECT_GE(QuerySuccessRatio(p, wall - 1), sla);
}

TEST(ScalabilityModelTest, RetriesRecoverSuccessRatio) {
  // The proxy's cross-region retry (Section IV-D): three regions turn a
  // 90% single-attempt success into ~99.9%.
  EXPECT_NEAR(SuccessWithRetries(0.9, 3), 0.999, 1e-9);
  EXPECT_DOUBLE_EQ(SuccessWithRetries(1.0, 1), 1.0);
  EXPECT_DOUBLE_EQ(SuccessWithRetries(0.0, 3), 0.0);
}

TEST(ScalabilityModelTest, SuccessCurveShape) {
  auto curve = SuccessCurve(0.0001, 10000, 40);
  ASSERT_EQ(curve.size(), 40u);
  EXPECT_EQ(curve.front().fanout, 1);
  EXPECT_EQ(curve.back().fanout, 10000);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].fanout, curve[i - 1].fanout);
    EXPECT_LT(curve[i].success_ratio, curve[i - 1].success_ratio);
  }
  EXPECT_NEAR(curve.back().success_ratio, 0.3679, 0.01);  // ~e^-1
}

TEST(ScalabilityModelTest, SuccessCurveDegenerateInputs) {
  EXPECT_TRUE(SuccessCurve(0.0001, 0, 10).empty());
  EXPECT_TRUE(SuccessCurve(0.0001, 100, 1).empty());
}

}  // namespace
}  // namespace scalewall::core
