// Unit tests for Granular Partitioning bricks: id arithmetic, scanning,
// adaptive compression state machine, size accounting.

#include <gtest/gtest.h>

#include "cubrick/brick.h"
#include "cubrick/schema.h"

namespace scalewall::cubrick {
namespace {

TableSchema TwoDimSchema() {
  TableSchema schema;
  schema.dimensions = {
      Dimension{"x", /*cardinality=*/100, /*range_size=*/10},  // 10 buckets
      Dimension{"y", /*cardinality=*/40, /*range_size=*/8},    // 5 buckets
  };
  schema.metrics = {Metric{"m"}};
  return schema;
}

TEST(BrickIdTest, MixedRadixEncoding) {
  TableSchema schema = TwoDimSchema();
  // x=23 -> bucket 2, y=17 -> bucket 2; id = 2*5 + 2 = 12.
  EXPECT_EQ(BrickIdForRow(schema, {23, 17}), 12u);
  EXPECT_EQ(BrickIdForRow(schema, {0, 0}), 0u);
  EXPECT_EQ(BrickIdForRow(schema, {99, 39}), 9u * 5 + 4);
}

TEST(BrickIdTest, BucketDecodeInvertsEncode) {
  TableSchema schema = TwoDimSchema();
  for (uint32_t x : {0u, 5u, 23u, 99u}) {
    for (uint32_t y : {0u, 7u, 17u, 39u}) {
      BrickId id = BrickIdForRow(schema, {x, y});
      EXPECT_EQ(BrickBucket(schema, id, 0), x / 10);
      EXPECT_EQ(BrickBucket(schema, id, 1), y / 8);
    }
  }
}

TEST(BrickIdTest, BrickSpaceIsProductOfBuckets) {
  TableSchema schema = TwoDimSchema();
  EXPECT_EQ(BrickSpace(schema), 50u);
  // Rounding up of partial buckets: cardinality 101, range 10 -> 11.
  schema.dimensions[0].cardinality = 101;
  EXPECT_EQ(BrickSpace(schema), 55u);
}

class BrickTest : public ::testing::Test {
 protected:
  BrickTest() : schema_(TwoDimSchema()), brick_(12, 2, 1) {
    // Rows in bucket (2, 2): x in [20,29], y in [16,23].
    brick_.Append({23, 17}, {1.0});
    brick_.Append({25, 16}, {2.0});
    brick_.Append({20, 23}, {4.0});
  }

  Query SumQuery() {
    Query q;
    q.table = "t";
    q.aggregations = {Aggregation{0, AggOp::kSum}};
    return q;
  }

  TableSchema schema_;
  Brick brick_;
};

TEST_F(BrickTest, ScanAggregatesAll) {
  QueryResult result(1);
  std::atomic<int64_t> decompressions{0};
  brick_.Scan(schema_, SumQuery(), result, &decompressions);
  EXPECT_EQ(*result.Value({}, 0, AggOp::kSum), 7.0);
  EXPECT_EQ(result.rows_scanned, 3);
  EXPECT_EQ(decompressions, 0);
}

TEST_F(BrickTest, ScanAppliesRowFilters) {
  Query q = SumQuery();
  q.filters = {FilterRange{0, 21, 26}};  // only x=23, x=25 pass
  QueryResult result(1);
  std::atomic<int64_t> decompressions{0};
  brick_.Scan(schema_, q, result, &decompressions);
  EXPECT_EQ(*result.Value({}, 0, AggOp::kSum), 3.0);
}

TEST_F(BrickTest, ScanGroupBy) {
  Query q = SumQuery();
  q.group_by = {1};  // y
  QueryResult result(1);
  std::atomic<int64_t> decompressions{0};
  brick_.Scan(schema_, q, result, &decompressions);
  EXPECT_EQ(result.num_groups(), 3u);
  EXPECT_EQ(*result.Value({17}, 0, AggOp::kSum), 1.0);
  EXPECT_EQ(*result.Value({16}, 0, AggOp::kSum), 2.0);
  EXPECT_EQ(*result.Value({23}, 0, AggOp::kSum), 4.0);
}

TEST_F(BrickTest, ScanBumpsHotness) {
  EXPECT_EQ(brick_.hotness(), 0u);
  QueryResult result(1);
  std::atomic<int64_t> d{0};
  brick_.Scan(schema_, SumQuery(), result, &d);
  brick_.Scan(schema_, SumQuery(), result, &d);
  EXPECT_EQ(brick_.hotness(), 2u);
  brick_.Decay();
  EXPECT_EQ(brick_.hotness(), 1u);
  brick_.Decay();
  brick_.Decay();  // saturates at zero
  EXPECT_EQ(brick_.hotness(), 0u);
}

TEST_F(BrickTest, CompressShrinksMemoryAndScanRestores) {
  size_t raw = brick_.MemoryFootprint();
  EXPECT_EQ(raw, brick_.DecompressedSize());
  brick_.Compress();
  EXPECT_EQ(brick_.state(), BrickState::kCompressed);
  EXPECT_LT(brick_.MemoryFootprint(), raw);
  EXPECT_EQ(brick_.DecompressedSize(), raw);  // logical size unchanged

  QueryResult result(1);
  std::atomic<int64_t> decompressions{0};
  brick_.Scan(schema_, SumQuery(), result, &decompressions);
  EXPECT_EQ(decompressions, 1);
  EXPECT_EQ(brick_.state(), BrickState::kUncompressed);
  EXPECT_EQ(*result.Value({}, 0, AggOp::kSum), 7.0);
}

TEST_F(BrickTest, CompressIsIdempotent) {
  brick_.Compress();
  size_t compressed = brick_.MemoryFootprint();
  brick_.Compress();
  EXPECT_EQ(brick_.MemoryFootprint(), compressed);
  brick_.Decompress();
  brick_.Decompress();
  EXPECT_EQ(brick_.state(), BrickState::kUncompressed);
}

TEST_F(BrickTest, AppendToCompressedBrickDecompressesFirst) {
  brick_.Compress();
  brick_.Append({22, 20}, {8.0});
  EXPECT_EQ(brick_.state(), BrickState::kUncompressed);
  EXPECT_EQ(brick_.num_rows(), 4u);
  QueryResult result(1);
  std::atomic<int64_t> d{0};
  brick_.Scan(schema_, SumQuery(), result, &d);
  EXPECT_EQ(*result.Value({}, 0, AggOp::kSum), 15.0);
}

TEST_F(BrickTest, SsdEvictionLifecycle) {
  // Must compress first.
  EXPECT_EQ(brick_.EvictToSsd().code(), StatusCode::kFailedPrecondition);
  brick_.Compress();
  size_t compressed = brick_.MemoryFootprint();
  ASSERT_TRUE(brick_.EvictToSsd().ok());
  EXPECT_EQ(brick_.state(), BrickState::kOnSsd);
  EXPECT_EQ(brick_.MemoryFootprint(), 0u);
  EXPECT_EQ(brick_.SsdFootprint(), compressed);
  // Scanning an SSD brick loads + decompresses transparently.
  QueryResult result(1);
  std::atomic<int64_t> decompressions{0};
  brick_.Scan(schema_, SumQuery(), result, &decompressions);
  EXPECT_EQ(brick_.state(), BrickState::kUncompressed);
  EXPECT_EQ(brick_.SsdFootprint(), 0u);
  EXPECT_EQ(*result.Value({}, 0, AggOp::kSum), 7.0);
}

TEST_F(BrickTest, ExportRowsFromAllStates) {
  auto check = [&] {
    std::vector<Row> rows;
    brick_.ExportRows(rows);
    EXPECT_EQ(rows.size(), 3u);
    double sum = 0;
    for (const Row& r : rows) sum += r.metrics[0];
    EXPECT_EQ(sum, 7.0);
  };
  check();  // uncompressed
  brick_.Compress();
  check();  // compressed — must not disturb state
  EXPECT_EQ(brick_.state(), BrickState::kCompressed);
  brick_.EvictToSsd();
  check();  // on SSD
  EXPECT_EQ(brick_.state(), BrickState::kOnSsd);
}

}  // namespace
}  // namespace scalewall::cubrick
