// Epoch-invalidated result caching, end to end: partition epochs across
// every invalidation path (ingestion, repartition, migration re-sync,
// failover recovery), the per-server partial-result cache (policy
// semantics, cancel-safety, LRU bounds), and the proxy's merged-result
// cache (validated hits, validation failures, the kAllowStale stale
// serve) through the redesigned QueryRequest submission API.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/deployment.h"
#include "core/metrics.h"
#include "cubrick/server.h"
#include "exec/cancel.h"
#include "sim/simulation.h"
#include "workload/generators.h"

namespace scalewall::cubrick {
namespace {

// Exact (bitwise-value) equality of two merged results: same group keys,
// same aggregation states. This is the "byte-identical to a re-scan"
// guarantee every non-stale cache hit must meet.
bool SameResult(const QueryResult& a, const QueryResult& b) {
  if (a.num_groups() != b.num_groups()) return false;
  auto it_b = b.groups().begin();
  for (auto it_a = a.groups().begin(); it_a != a.groups().end();
       ++it_a, ++it_b) {
    if (it_a->first != it_b->first) return false;
    if (it_a->second.size() != it_b->second.size()) return false;
    for (size_t i = 0; i < it_a->second.size(); ++i) {
      const AggState& x = it_a->second[i];
      const AggState& y = it_b->second[i];
      if (x.sum != y.sum || x.count != y.count || x.min != y.min ||
          x.max != y.max) {
        return false;
      }
    }
  }
  return true;
}

class MapDirectory : public ServerDirectory {
 public:
  void Add(CubrickServer* server) { servers_[server->server_id()] = server; }
  CubrickServer* Lookup(cluster::ServerId id) const override {
    auto it = servers_.find(id);
    return it == servers_.end() ? nullptr : it->second;
  }

 private:
  std::map<cluster::ServerId, CubrickServer*> servers_;
};

class ServerCacheTest : public ::testing::Test {
 protected:
  ServerCacheTest()
      : sim_(47),
        cluster_(cluster::Cluster::Build({.regions = 2,
                                          .racks_per_region = 1,
                                          .servers_per_rack = 3,
                                          .memory_bytes = 1 << 20,
                                          .ssd_bytes = 8 << 20})),
        catalog_(1000) {
    options_.result_cache_bytes = 1 << 20;
    for (cluster::ServerId id : cluster_.AllServers()) {
      auto server = std::make_unique<CubrickServer>(&sim_, &cluster_,
                                                    &catalog_, id, options_);
      server->SetDirectory(&directory_);
      directory_.Add(server.get());
      servers_.push_back(std::move(server));
    }
  }

  CubrickServer& server(cluster::ServerId id) { return *servers_[id]; }

  std::vector<sm::ShardId> MakeTable(const std::string& name,
                                     uint32_t partitions = 4) {
    TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
    EXPECT_TRUE(catalog_.CreateTable(name, schema, partitions).ok());
    return catalog_.ShardsForTable(name);
  }

  std::vector<Row> MakeRows(size_t n, uint64_t seed = 5) {
    Rng rng(seed);
    return workload::GenerateRows(workload::MakeSchema(2, 64, 8, 1), n, rng);
  }

  Query CountSum(const std::string& table) {
    Query q;
    q.table = table;
    q.aggregations = {Aggregation{0, AggOp::kCount},
                      Aggregation{0, AggOp::kSum}};
    return q;
  }

  CubrickServerOptions options_;
  sim::Simulation sim_;
  cluster::Cluster cluster_;
  Catalog catalog_;
  MapDirectory directory_;
  std::vector<std::unique_ptr<CubrickServer>> servers_;
};

TEST_F(ServerCacheTest, EpochAdvancesOnIngestion) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  auto before = server(0).PartitionEpoch("t", 0);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(50)).ok());
  auto after = server(0).PartitionEpoch("t", 0);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, *before);
  // Another batch bumps it again (even a rollup merge changes content).
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(50, 6)).ok());
  auto third = server(0).PartitionEpoch("t", 0);
  ASSERT_TRUE(third.ok());
  EXPECT_GT(*third, *after);
}

TEST_F(ServerCacheTest, EpochChangesOnMigrationResync) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(50)).ok());
  auto before = server(0).PartitionEpoch("t", 0);
  ASSERT_TRUE(before.ok());
  // The cutover re-sync path replaces the partition's data wholesale.
  server(0).ReplacePartitionData(PartitionRef{"t", 0}, MakeRows(60, 7));
  auto after = server(0).PartitionEpoch("t", 0);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*after, *before);
}

TEST_F(ServerCacheTest, EpochChangesOnFailoverRecovery) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(80)).ok());
  auto source_epoch = server(0).PartitionEpoch("t", 0);
  ASSERT_TRUE(source_epoch.ok());
  // Server 3 (other region) recovers the partition cross-region on
  // AddShard; the recovered copy gets its own fresh epoch — epochs are
  // drawn from one global monotonic source and never reused, so copies
  // on different hosts never alias in the merged cache's epoch vector.
  server(3).SetRecoverySource(
      [this](const std::string&, uint32_t) { return &server(0); });
  ASSERT_TRUE(server(3).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  auto recovered_epoch = server(3).PartitionEpoch("t", 0);
  ASSERT_TRUE(recovered_epoch.ok());
  EXPECT_GT(*recovered_epoch, 0u);
  EXPECT_NE(*recovered_epoch, *source_epoch);
  EXPECT_EQ(server(3).stats().recoveries, 1);
}

TEST_F(ServerCacheTest, PartialCacheHitIsByteIdenticalToRescan) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(200)).ok());
  Query q = CountSum("t");
  q.group_by = {0};
  auto first = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_EQ(server(0).stats().cache_misses, 1);
  auto second = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->epoch, first->epoch);
  EXPECT_EQ(server(0).stats().cache_hits, 1);
  EXPECT_TRUE(SameResult(first->result, second->result));
  // A forced re-scan agrees too.
  auto bypass =
      server(0).ExecutePartial(q, 0, /*hop_budget=*/-1, nullptr, {}, -1,
                               cache::CachePolicy::kBypass);
  ASSERT_TRUE(bypass.ok());
  EXPECT_FALSE(bypass->cache_hit);
  EXPECT_TRUE(SameResult(first->result, bypass->result));
}

TEST_F(ServerCacheTest, IngestionInvalidatesPartialCache) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(100)).ok());
  Query q = CountSum("t");
  auto first = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(first.ok());
  // New data: the cached entry's epoch no longer matches and is dropped.
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(100, 9)).ok());
  auto second = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  EXPECT_EQ(server(0).stats().cache_invalidations, 1);
  double count = *second->result.Value({}, 0, AggOp::kCount);
  EXPECT_DOUBLE_EQ(count, 200.0);
  // And the refreshed entry serves the new content.
  auto third = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->cache_hit);
  EXPECT_TRUE(SameResult(second->result, third->result));
}

TEST_F(ServerCacheTest, CachePolicySemantics) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(100)).ok());
  Query q = CountSum("t");
  // kBypass never reads nor writes the cache.
  auto bypass =
      server(0).ExecutePartial(q, 0, -1, nullptr, {}, -1,
                               cache::CachePolicy::kBypass);
  ASSERT_TRUE(bypass.ok());
  EXPECT_EQ(server(0).ResultCacheSnapshot().entries, 0u);
  // kRefresh skips the lookup but stores the fresh result.
  auto refresh =
      server(0).ExecutePartial(q, 0, -1, nullptr, {}, -1,
                               cache::CachePolicy::kRefresh);
  ASSERT_TRUE(refresh.ok());
  EXPECT_FALSE(refresh->cache_hit);
  EXPECT_EQ(server(0).ResultCacheSnapshot().entries, 1u);
  // Another kRefresh still re-scans even though an entry exists.
  auto refresh2 =
      server(0).ExecutePartial(q, 0, -1, nullptr, {}, -1,
                               cache::CachePolicy::kRefresh);
  ASSERT_TRUE(refresh2.ok());
  EXPECT_FALSE(refresh2->cache_hit);
  // kDefault serves the stored entry.
  auto hit = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
}

TEST_F(ServerCacheTest, JoinQueriesCacheUnderDimEpochs) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(100)).ok());
  ASSERT_TRUE(catalog_.CreateReplicatedTable("dim", 64,
                                             {Dimension{"bucket", 4, 1}})
                  .ok());
  ReplicatedTable master("dim", 64, {Dimension{"bucket", 4, 1}});
  for (uint32_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(master.Set(DimensionEntry{k, {k % 4}}).ok());
  }
  master.set_epoch(1);
  server(0).SetReplicatedTable(master);
  Query q = CountSum("t");
  q.joins = {Join{1, "dim", 0}};
  q.group_by_joins = {0};
  // The old §10 carve-out ("joins are never cached") is lifted: the
  // cache entry records the dim epoch beside the partition epoch, so a
  // hit is provably valid and byte-identical to a re-scan.
  auto first = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_EQ(server(0).ResultCacheSnapshot().entries, 1u);
  auto second = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_TRUE(SameResult(first->result, second->result));
  // A dim update ships with a bumped epoch; the entry no longer
  // validates and the re-scan sees the new attribute mapping.
  for (uint32_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(master.Set(DimensionEntry{k, {(k + 1) % 4}}).ok());
  }
  master.set_epoch(2);
  server(0).SetReplicatedTable(master);
  auto after = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_GE(server(0).stats().cache_invalidations, 1);
  EXPECT_FALSE(SameResult(first->result, after->result));
  // The refreshed entry validates against the new epoch and its hit is
  // byte-identical to the post-update scan.
  auto refreshed = server(0).ExecutePartial(q, 0);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_TRUE(refreshed->cache_hit);
  EXPECT_TRUE(SameResult(after->result, refreshed->result));
}

TEST_F(ServerCacheTest, CancelledExecutionNeverServesNorPopulates) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(100)).ok());
  Query q = CountSum("t");
  exec::CancelToken cancel;
  cancel.RequestCancel();
  auto cancelled = server(0).ExecutePartial(q, 0, -1, &cancel);
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(server(0).ResultCacheSnapshot().entries, 0u);
  // Populate normally, then verify a cancelled token still refuses to
  // serve the (valid) hit: the coordinator gave up on this query.
  ASSERT_TRUE(server(0).ExecutePartial(q, 0).ok());
  EXPECT_EQ(server(0).ResultCacheSnapshot().entries, 1u);
  auto cancelled2 = server(0).ExecutePartial(q, 0, -1, &cancel);
  EXPECT_EQ(cancelled2.status().code(), StatusCode::kCancelled);
}

TEST_F(ServerCacheTest, LruEvictionUnderBytesBudget) {
  CubrickServerOptions tiny = options_;
  tiny.result_cache_bytes = 2048;
  CubrickServer small(&sim_, &cluster_, &catalog_, /*server=*/99, tiny);
  auto shards = MakeTable("t", 1);
  ASSERT_TRUE(small.AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(small.InsertRows("t", 0, MakeRows(500)).ok());
  // Distinct fingerprints via varying filters (single-group results so
  // each entry fits the budget individually); enough of them must
  // overflow 2 KiB collectively.
  for (uint32_t lo = 0; lo < 24; ++lo) {
    Query q = CountSum("t");
    q.filters = {FilterRange{0, lo, 4096}};
    ASSERT_TRUE(small.ExecutePartial(q, 0).ok());
  }
  auto snap = small.ResultCacheSnapshot();
  EXPECT_GT(snap.evictions, 0);
  EXPECT_LE(snap.bytes, 2048u);
  EXPECT_LT(snap.entries, 24u);
}

TEST_F(ServerCacheTest, DropTableDataClearsCache) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(100)).ok());
  ASSERT_TRUE(server(0).ExecutePartial(CountSum("t"), 0).ok());
  EXPECT_EQ(server(0).ResultCacheSnapshot().entries, 1u);
  server(0).DropTableData("t");
  EXPECT_EQ(server(0).ResultCacheSnapshot().entries, 0u);
  EXPECT_GE(server(0).stats().cache_invalidations, 1);
}

}  // namespace
}  // namespace scalewall::cubrick

namespace scalewall::core {
namespace {

DeploymentOptions CachingOptions(uint64_t seed = 21) {
  DeploymentOptions options;
  options.seed = seed;
  options.topology.regions = 3;
  options.topology.racks_per_region = 3;
  options.topology.servers_per_rack = 4;  // 36 servers
  options.max_shards = 5000;
  options.per_host_failure_probability = 0.0;
  options.enable_result_caching = true;
  return options;
}

cubrick::Query CountSum(const std::string& table) {
  cubrick::Query q;
  q.table = table;
  q.aggregations = {cubrick::Aggregation{0, cubrick::AggOp::kCount},
                    cubrick::Aggregation{0, cubrick::AggOp::kSum}};
  return q;
}

class ProxyCacheTest : public ::testing::Test {
 protected:
  void Make(DeploymentOptions options) {
    dep_ = std::make_unique<Deployment>(options);
    schema_ = workload::MakeSchema(2, 64, 8, 1);
  }

  std::vector<cubrick::Row> Setup(const std::string& table, size_t rows) {
    EXPECT_TRUE(dep_->CreateTable(table, schema_).ok());
    Rng rng(7);
    auto data = workload::GenerateRows(schema_, rows, rng);
    EXPECT_TRUE(dep_->LoadRows(table, data).ok());
    dep_->RunFor(15 * kSecond);
    return data;
  }

  std::unique_ptr<Deployment> dep_;
  cubrick::TableSchema schema_;
};

TEST_F(ProxyCacheTest, ValidatedHitSkipsFanoutAndCutsLatency) {
  Make(CachingOptions());
  Setup("t", 4000);
  cubrick::QueryRequest request(CountSum("t"));
  auto first = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(first.status.ok()) << first.status;
  EXPECT_EQ(first.cache_hits, 0);
  auto second = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(second.status.ok()) << second.status;
  EXPECT_EQ(second.cache_hits, 1);
  EXPECT_FALSE(second.served_stale);
  // No fan-out attempt ran: the answer came from the merged cache after
  // one epoch-check roundtrip, which is why the latency collapses.
  EXPECT_EQ(second.attempts, 0);
  EXPECT_LT(second.latency, first.latency);
  EXPECT_TRUE(cubrick::SameResult(first.result, second.result));
  EXPECT_EQ(second.num_partitions, first.num_partitions);
  EXPECT_EQ(dep_->proxy().stats().cache_hits, 1);
}

TEST_F(ProxyCacheTest, IngestionFailsValidationAndServesFreshData) {
  Make(CachingOptions());
  auto rows = Setup("t", 3000);
  cubrick::QueryRequest request(CountSum("t"));
  ASSERT_TRUE(dep_->Query(cubrick::QueryRequest(request)).status.ok());
  // New rows bump the written partitions' epochs: the cached entry must
  // not be served.
  Rng rng(8);
  auto more = workload::GenerateRows(schema_, 500, rng);
  ASSERT_TRUE(dep_->LoadRows("t", more).ok());
  auto after = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_EQ(after.cache_hits, 0);
  EXPECT_FALSE(after.served_stale);
  EXPECT_DOUBLE_EQ(*after.result.Value({}, 0, cubrick::AggOp::kCount),
                   3500.0);
  EXPECT_GE(dep_->proxy().stats().cache_validation_failures, 1);
  // The full execution refreshed the entry; it validates again now.
  auto third = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(third.status.ok());
  EXPECT_EQ(third.cache_hits, 1);
  EXPECT_TRUE(cubrick::SameResult(after.result, third.result));
}

TEST_F(ProxyCacheTest, JoinResultsCacheAndDimUpdatesInvalidate) {
  Make(CachingOptions());
  Setup("t", 3000);
  ASSERT_TRUE(dep_->CreateDimensionTable("groups", 64,
                                         {cubrick::Dimension{"bucket", 4, 1}})
                  .ok());
  std::vector<cubrick::DimensionEntry> entries;
  for (uint32_t k = 0; k < 64; ++k) {
    entries.push_back(cubrick::DimensionEntry{k, {k % 4}});
  }
  ASSERT_TRUE(dep_->LoadDimensionEntries("groups", entries).ok());
  cubrick::Query q = CountSum("t");
  q.joins = {cubrick::Join{1, "groups", 0}};
  q.group_by_joins = {0};
  cubrick::QueryRequest request(q);
  // Join results are cacheable now (§15 lifts the §10 carve-out): the
  // merged entry's epoch vector carries the dim epochs, so the second
  // submission validates and skips the fan-out.
  auto first = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(first.status.ok()) << first.status;
  auto second = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.cache_hits, 1);
  EXPECT_EQ(second.attempts, 0);
  EXPECT_TRUE(cubrick::SameResult(first.result, second.result));
  // A dim update stamps a fresh epoch on every replica: the entry fails
  // validation and the re-execution sees the new mapping.
  ASSERT_TRUE(dep_->LoadDimensionEntries(
                      "groups", {cubrick::DimensionEntry{0, {3}}})
                  .ok());
  auto after = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_EQ(after.cache_hits, 0);
  EXPECT_GE(dep_->proxy().stats().cache_validation_failures, 1);
  EXPECT_FALSE(cubrick::SameResult(first.result, after.result));
  // The refreshed entry validates again and its hit is byte-identical
  // to the post-update execution.
  auto third = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(third.status.ok());
  EXPECT_EQ(third.cache_hits, 1);
  EXPECT_TRUE(cubrick::SameResult(after.result, third.result));
}

TEST_F(ProxyCacheTest, RepartitionFailsValidation) {
  Make(CachingOptions());
  Setup("t", 3000);
  cubrick::QueryRequest request(CountSum("t"));
  ASSERT_TRUE(dep_->Query(cubrick::QueryRequest(request)).status.ok());
  // 12 servers per region caps the partition count at 12.
  ASSERT_TRUE(dep_->Repartition("t", 12).ok());
  dep_->RunFor(15 * kSecond);
  auto after = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(after.status.ok()) << after.status;
  // The whole physical layout changed (fresh partitions, fresh epochs):
  // provably stale, so the entry cannot be served.
  EXPECT_EQ(after.cache_hits, 0);
  EXPECT_DOUBLE_EQ(*after.result.Value({}, 0, cubrick::AggOp::kCount),
                   3000.0);
}

TEST_F(ProxyCacheTest, StaleServeOnlyUnderAllowStaleWhenAllRegionsFail) {
  Make(CachingOptions());
  Setup("t", 2000);
  cubrick::QueryRequest request(CountSum("t"));
  auto cached = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(cached.status.ok());
  // Take every server down: no region can run (or even validate) a query.
  for (cluster::ServerId id : dep_->cluster().AllServers()) {
    dep_->cluster().SetHealth(id, cluster::ServerHealth::kDown);
  }
  auto failed = dep_->Query(cubrick::QueryRequest(request));
  EXPECT_FALSE(failed.status.ok());
  EXPECT_FALSE(failed.served_stale);
  // kAllowStale degrades gracefully — flagged, never silent.
  cubrick::QueryRequest stale_ok = request;
  stale_ok.cache_policy = cache::CachePolicy::kAllowStale;
  auto stale = dep_->Query(cubrick::QueryRequest(stale_ok));
  ASSERT_TRUE(stale.status.ok()) << stale.status;
  EXPECT_TRUE(stale.served_stale);
  EXPECT_EQ(stale.cache_stale_serves, 1);
  EXPECT_TRUE(cubrick::SameResult(cached.result, stale.result));
  EXPECT_EQ(dep_->proxy().stats().cache_stale_serves, 1);
}

TEST_F(ProxyCacheTest, BypassPolicyNeverTouchesTheCache) {
  Make(CachingOptions());
  Setup("t", 2000);
  cubrick::QueryRequest request(CountSum("t"));
  request.cache_policy = cache::CachePolicy::kBypass;
  ASSERT_TRUE(dep_->Query(cubrick::QueryRequest(request)).status.ok());
  ASSERT_TRUE(dep_->Query(cubrick::QueryRequest(request)).status.ok());
  EXPECT_EQ(dep_->proxy().MergedCacheSnapshot().entries, 0u);
  EXPECT_EQ(dep_->proxy().stats().cache_hits, 0);
}

TEST_F(ProxyCacheTest, RequestDeadlineApplies) {
  Make(CachingOptions());
  Setup("t", 2000);
  cubrick::QueryRequest request(CountSum("t"));
  request.cache_policy = cache::CachePolicy::kBypass;  // force execution
  request.deadline = 1 * kMicrosecond;
  auto outcome = dep_->Query(cubrick::QueryRequest(request));
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ProxyCacheTest, PerRequestTracingToggle) {
  DeploymentOptions options = CachingOptions();
  options.enable_query_tracing = true;
  Make(options);
  Setup("t", 1000);
  size_t before = dep_->trace_sink().num_traces();
  cubrick::QueryRequest quiet(CountSum("t"));
  quiet.tracing = false;
  ASSERT_TRUE(dep_->Query(cubrick::QueryRequest(quiet)).status.ok());
  EXPECT_EQ(dep_->trace_sink().num_traces(), before);
  cubrick::QueryRequest traced(CountSum("t"));
  ASSERT_TRUE(dep_->Query(cubrick::QueryRequest(traced)).status.ok());
  EXPECT_EQ(dep_->trace_sink().num_traces(), before + 1);
}

TEST_F(ProxyCacheTest, QuerySqlWithRequestOverrides) {
  Make(CachingOptions());
  Setup("t", 2000);
  cubrick::QueryRequest request;
  request.preferred_region = 1;
  auto first = dep_->QuerySql("SELECT SUM(metric0) FROM t", request);
  ASSERT_TRUE(first.status.ok()) << first.status;
  auto second = dep_->QuerySql("SELECT SUM(metric0) FROM t", request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.cache_hits, 1);
  EXPECT_TRUE(cubrick::SameResult(first.result, second.result));
}

TEST_F(ProxyCacheTest, MetricsExportCarriesCacheAndCoordinatorSeries) {
  Make(CachingOptions());
  Setup("t", 2000);
  cubrick::QueryRequest request(CountSum("t"));
  ASSERT_TRUE(dep_->Query(cubrick::QueryRequest(request)).status.ok());
  ASSERT_TRUE(dep_->Query(cubrick::QueryRequest(request)).status.ok());
  std::string text = ExportMetricsText(*dep_);
  EXPECT_NE(text.find("scalewall_proxy_cache_total"), std::string::npos);
  EXPECT_NE(text.find("result=\"validated_hit\""), std::string::npos);
  EXPECT_NE(text.find("scalewall_server_result_cache_total"),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_server_result_cache_entries"),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_proxy_coordinator_picks{server="),
            std::string::npos);
}

TEST_F(ProxyCacheTest, ReliabilityCountersAccumulateIntoStats) {
  Make(CachingOptions());
  Setup("t", 2000);
  cubrick::QueryRequest request(CountSum("t"));
  ASSERT_TRUE(dep_->Query(cubrick::QueryRequest(request)).status.ok());
  auto hit = dep_->Query(cubrick::QueryRequest(request));
  ASSERT_TRUE(hit.status.ok());
  EXPECT_EQ(hit.cache_hits, 1);
  // The proxy's Stats embed the same ReliabilityCounters struct the
  // per-query outcomes use; the per-outcome ints roll up into them.
  EXPECT_EQ(dep_->proxy().stats().cache_hits, 1);
  EXPECT_EQ(dep_->proxy().stats().subquery_retries, 0);
}

}  // namespace
}  // namespace scalewall::core
