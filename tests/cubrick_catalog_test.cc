// Unit and property tests for the shard mapper (Section IV-A) and the
// catalog / shard reverse index.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/random.h"
#include "cubrick/catalog.h"
#include "cubrick/shard_mapper.h"
#include "workload/generators.h"

namespace scalewall::cubrick {
namespace {

TEST(ShardMapperTest, PartitionNameUsesHashSeparator) {
  EXPECT_EQ(PartitionName("dim_users", 0), "dim_users#0");
  EXPECT_EQ(PartitionName("dim_users", 3), "dim_users#3");
}

TEST(ShardMapperTest, HashPartitionZeroIsMonotonic) {
  // "Cubrick's current shard mapping function hashes only partition zero,
  // and monotonically increments the remaining partitions."
  ShardMapper mapper(100000, ShardMappingStrategy::kHashPartitionZero);
  sm::ShardId base = mapper.ShardFor("test_table", 0);
  for (uint32_t p = 1; p < 60; ++p) {
    EXPECT_EQ(mapper.ShardFor("test_table", p), (base + p) % 100000);
  }
}

TEST(ShardMapperTest, HashPartitionZeroWrapsKeySpace) {
  ShardMapper mapper(100, ShardMappingStrategy::kHashPartitionZero);
  sm::ShardId base = mapper.ShardFor("t", 0);
  EXPECT_EQ(mapper.ShardFor("t", 99), (base + 99) % 100);
  EXPECT_LT(mapper.ShardFor("t", 99), 100u);
}

TEST(ShardMapperTest, ReplicaBasedMapsAllPartitionsToOneShard) {
  ShardMapper mapper(100000, ShardMappingStrategy::kReplicaBased);
  sm::ShardId shard = mapper.ShardFor("t", 0);
  for (uint32_t p = 1; p < 16; ++p) {
    EXPECT_EQ(mapper.ShardFor("t", p), shard);
  }
}

TEST(ShardMapperTest, SaltRerollsBaseDeterministically) {
  ShardMapper mapper(100000, ShardMappingStrategy::kHashPartitionZero);
  sm::ShardId base0 = mapper.ShardFor("t", 0);
  sm::ShardId base0_again = mapper.ShardFor("t", 0, 0);
  EXPECT_EQ(base0, base0_again);  // salt 0 == production mapping
  sm::ShardId base1 = mapper.ShardFor("t", 0, 1);
  EXPECT_NE(base1, base0);
  EXPECT_EQ(mapper.ShardFor("t", 0, 1), base1);  // deterministic
  // Salted mappings stay monotonic within the table.
  for (uint32_t p = 1; p < 8; ++p) {
    EXPECT_EQ(mapper.ShardFor("t", p, 1), (base1 + p) % 100000);
  }
}

TEST(ShardMapperTest, StrategyNames) {
  EXPECT_EQ(ShardMappingStrategyName(ShardMappingStrategy::kNaiveHash),
            "naive_hash");
  EXPECT_EQ(
      ShardMappingStrategyName(ShardMappingStrategy::kHashPartitionZero),
      "hash_partition_zero");
  EXPECT_EQ(ShardMappingStrategyName(ShardMappingStrategy::kReplicaBased),
            "replica_based");
}

// Property: the production mapping prevents same-table collisions for any
// table with <= maxShards partitions; the naive mapping does not.
class MapperPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapperPropertyTest, ProductionMappingHasNoSameTableCollisions) {
  Rng rng(GetParam());
  ShardMapper mapper(100000, ShardMappingStrategy::kHashPartitionZero);
  for (int t = 0; t < 200; ++t) {
    std::string table = "tbl_" + std::to_string(rng.Next() % 1000000);
    uint32_t partitions = 1 + static_cast<uint32_t>(rng.NextBounded(64));
    std::set<sm::ShardId> shards;
    for (uint32_t p = 0; p < partitions; ++p) {
      shards.insert(mapper.ShardFor(table, p));
    }
    EXPECT_EQ(shards.size(), partitions) << table;
  }
}

TEST_P(MapperPropertyTest, NaiveMappingCollidesAtScale) {
  Rng rng(GetParam());
  // Small key space so collisions are frequent enough to observe.
  ShardMapper mapper(1000, ShardMappingStrategy::kNaiveHash);
  int tables_with_collision = 0;
  for (int t = 0; t < 200; ++t) {
    std::string table = "tbl_" + std::to_string(rng.Next() % 1000000);
    std::set<sm::ShardId> shards;
    for (uint32_t p = 0; p < 40; ++p) {
      shards.insert(mapper.ShardFor(table, p));
    }
    if (shards.size() < 40) ++tables_with_collision;
  }
  // 40 partitions into 1000 shards: ~54% of tables collide (birthday).
  EXPECT_GT(tables_with_collision, 50);
}

TEST_P(MapperPropertyTest, MappingIsUniformish) {
  Rng rng(GetParam());
  ShardMapper mapper(997, ShardMappingStrategy::kHashPartitionZero);
  std::unordered_map<sm::ShardId, int> counts;
  const int tables = 5000;
  for (int t = 0; t < tables; ++t) {
    counts[mapper.ShardFor("t" + std::to_string(rng.Next()), 0)]++;
  }
  int max_count = 0;
  for (const auto& [shard, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // Expected ~5 per shard; a badly skewed hash would pile up far more.
  EXPECT_LT(max_count, 25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// --- catalog ---

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : catalog_(100000) {}
  TableSchema Schema() { return workload::MakeSchema(2, 100, 10, 1); }
  Catalog catalog_;
};

TEST_F(CatalogTest, MappingSaltPersistsInMetadata) {
  ASSERT_TRUE(catalog_.CreateTable("t", Schema(), 8, /*mapping_salt=*/3).ok());
  auto info = catalog_.GetTable("t");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->mapping_salt, 3u);
  // Forward/reverse mappings agree under the salt.
  auto shard = catalog_.ShardForPartition("t", 2);
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(*shard, catalog_.mapper().ShardFor("t", 2, 3));
  auto refs = catalog_.PartitionsForShard(*shard);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].partition, 2u);
  // Repartition keeps the salt.
  ASSERT_TRUE(catalog_.SetNumPartitions("t", 16).ok());
  EXPECT_EQ(catalog_.GetTable("t")->mapping_salt, 3u);
  EXPECT_EQ(*catalog_.ShardForPartition("t", 12),
            catalog_.mapper().ShardFor("t", 12, 3));
}

TEST_F(CatalogTest, CreateUsesEightPartitionsByDefault) {
  ASSERT_TRUE(catalog_.CreateTable("t", Schema()).ok());
  auto info = catalog_.GetTable("t");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_partitions, 8u);
  EXPECT_TRUE(catalog_.HasTable("t"));
  EXPECT_EQ(catalog_.num_tables(), 1u);
}

TEST_F(CatalogTest, CreateRejectsDuplicatesAndBadNames) {
  ASSERT_TRUE(catalog_.CreateTable("t", Schema()).ok());
  EXPECT_EQ(catalog_.CreateTable("t", Schema()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.CreateTable("bad#name", Schema()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog_.CreateTable("", Schema()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog_.CreateTable("u", Schema(), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, DropTableCleansIndex) {
  ASSERT_TRUE(catalog_.CreateTable("t", Schema()).ok());
  auto shards = catalog_.ShardsForTable("t");
  ASSERT_EQ(shards.size(), 8u);
  ASSERT_TRUE(catalog_.DropTable("t").ok());
  EXPECT_FALSE(catalog_.HasTable("t"));
  for (sm::ShardId shard : shards) {
    EXPECT_TRUE(catalog_.PartitionsForShard(shard).empty());
  }
  EXPECT_EQ(catalog_.DropTable("t").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, ReverseIndexMatchesForwardMapping) {
  ASSERT_TRUE(catalog_.CreateTable("t", Schema(), 16).ok());
  for (uint32_t p = 0; p < 16; ++p) {
    auto shard = catalog_.ShardForPartition("t", p);
    ASSERT_TRUE(shard.ok());
    auto refs = catalog_.PartitionsForShard(*shard);
    ASSERT_EQ(refs.size(), 1u);
    EXPECT_EQ(refs[0].table, "t");
    EXPECT_EQ(refs[0].partition, p);
  }
}

TEST_F(CatalogTest, ShardForPartitionBoundsChecked) {
  ASSERT_TRUE(catalog_.CreateTable("t", Schema()).ok());
  EXPECT_EQ(catalog_.ShardForPartition("t", 8).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog_.ShardForPartition("nope", 0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, SetNumPartitionsReindexes) {
  ASSERT_TRUE(catalog_.CreateTable("t", Schema(), 8).ok());
  auto old_shards = catalog_.ShardsForTable("t");
  ASSERT_TRUE(catalog_.SetNumPartitions("t", 16).ok());
  auto new_shards = catalog_.ShardsForTable("t");
  EXPECT_EQ(new_shards.size(), 16u);
  // Monotonic mapping: the first 8 shards are unchanged.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(new_shards[i], old_shards[i]);
  // The reverse index covers exactly the new partitions.
  int indexed = 0;
  for (sm::ShardId shard : new_shards) {
    indexed += static_cast<int>(catalog_.PartitionsForShard(shard).size());
  }
  EXPECT_EQ(indexed, 16);
}

TEST_F(CatalogTest, CrossTablePartitionCollisionsShareShard) {
  // Force a collision with the naive strategy on a tiny key space.
  Catalog catalog(4, ShardMappingStrategy::kNaiveHash);
  ASSERT_TRUE(catalog.CreateTable("a", Schema(), 4).ok());
  ASSERT_TRUE(catalog.CreateTable("b", Schema(), 4).ok());
  // 8 partitions in 4 shards: every shard carries two refs.
  int total = 0;
  for (sm::ShardId shard = 0; shard < 4; ++shard) {
    total += static_cast<int>(catalog.PartitionsForShard(shard).size());
  }
  EXPECT_EQ(total, 8);
}

TEST_F(CatalogTest, TableNamesSorted) {
  catalog_.CreateTable("zeta", Schema());
  catalog_.CreateTable("alpha", Schema());
  auto names = catalog_.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace scalewall::cubrick
