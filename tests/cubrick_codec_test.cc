// Unit and property tests for the columnar codecs.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "cubrick/codec.h"

namespace scalewall::cubrick {
namespace {

TEST(VarintTest, Roundtrip32EdgeValues) {
  std::vector<uint8_t> buf;
  std::vector<uint32_t> values{0, 1, 127, 128, 16383, 16384,
                               std::numeric_limits<uint32_t>::max()};
  for (uint32_t v : values) PutVarint32(buf, v);
  size_t pos = 0;
  for (uint32_t v : values) {
    auto got = GetVarint32(buf, pos);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, Roundtrip64EdgeValues) {
  std::vector<uint8_t> buf;
  std::vector<uint64_t> values{0, 1, 127, 128, (1ULL << 35),
                               std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) PutVarint64(buf, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    auto got = GetVarint64(buf, pos);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(VarintTest, TruncatedInputFails) {
  std::vector<uint8_t> buf;
  PutVarint32(buf, 1 << 20);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_FALSE(GetVarint32(buf, pos).ok());
}

TEST(DimCodecTest, RoundtripEmpty) {
  auto encoded = EncodeDimColumn({});
  auto decoded = DecodeDimColumn(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(DimCodecTest, RoundtripSimple) {
  std::vector<uint32_t> values{5, 5, 5, 7, 0, 0, 42};
  auto decoded = DecodeDimColumn(EncodeDimColumn(values));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, values);
}

TEST(DimCodecTest, RleCompressesRuns) {
  std::vector<uint32_t> values(10000, 3);  // one long run
  auto encoded = EncodeDimColumn(values);
  EXPECT_LT(encoded.size(), 16u);
}

TEST(DimCodecTest, CorruptInputFails) {
  std::vector<uint8_t> garbage{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(DecodeDimColumn(garbage).ok());
}

TEST(MetricCodecTest, RoundtripEmpty) {
  auto decoded = DecodeMetricColumn(EncodeMetricColumn({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(MetricCodecTest, RoundtripSpecialValues) {
  std::vector<double> values{0.0, -0.0, 1.0, -1.5,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             1e308, -1e-308};
  auto decoded = DecodeMetricColumn(EncodeMetricColumn(values));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ((*decoded)[i], values[i]) << i;
  }
}

TEST(MetricCodecTest, RepeatedValuesCompressWell) {
  std::vector<double> values(10000, 123.456);
  auto encoded = EncodeMetricColumn(values);
  // XOR-prev collapses repeats to 1 byte each (+header).
  EXPECT_LT(encoded.size(), values.size() * 2);
}

TEST(MetricCodecTest, TruncatedFails) {
  std::vector<double> values{1.0, 2.0, 3.0};
  auto encoded = EncodeMetricColumn(values);
  encoded.resize(encoded.size() / 2);
  EXPECT_FALSE(DecodeMetricColumn(encoded).ok());
}

TEST(DimCodecTest, SingleRunRoundtrip) {
  // One run covering the whole column: the smallest nontrivial RLE shape.
  std::vector<uint32_t> values(4097, 9);
  auto encoded = EncodeDimColumn(values);
  auto decoded = DecodeDimColumn(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, values);
  // And a single-element column (run length 1).
  decoded = DecodeDimColumn(EncodeDimColumn({7}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (std::vector<uint32_t>{7}));
}

TEST(DimCodecTest, TruncatedRunPayloadFails) {
  std::vector<uint32_t> values{1, 1, 2, 2, 2, 3};
  auto encoded = EncodeDimColumn(values);
  // Drop the tail so the declared row count can never be satisfied.
  encoded.resize(encoded.size() - 1);
  EXPECT_FALSE(DecodeDimColumn(encoded).ok());
  // An empty buffer is missing even the row-count varint.
  EXPECT_FALSE(DecodeDimColumn(std::vector<uint8_t>{}).ok());
}

TEST(MetricCodecTest, NanRoundtripsBitExact) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> values{qnan, 1.0, qnan, -0.0,
                             std::numeric_limits<double>::infinity()};
  auto decoded = DecodeMetricColumn(EncodeMetricColumn(values));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    // Bit compare: EXPECT_DOUBLE_EQ cannot express NaN == NaN, and the
    // codec must preserve the exact payload (including -0.0's sign).
    EXPECT_EQ(std::memcmp(&(*decoded)[i], &values[i], sizeof(double)), 0)
        << i;
  }
}

TEST(MetricCodecTest, TruncatedHeaderByteFails) {
  std::vector<double> values{1.0};
  auto encoded = EncodeMetricColumn(values);
  // Keep only the row-count varint: the first value's header is gone.
  encoded.resize(1);
  EXPECT_FALSE(DecodeMetricColumn(encoded).ok());
}

// Property sweep: random columns of several shapes roundtrip exactly.
class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, DimRoundtripRandom) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = rng.NextBounded(2000);
    uint32_t cardinality = 1 + static_cast<uint32_t>(rng.NextBounded(1000));
    std::vector<uint32_t> values(n);
    for (auto& v : values) {
      v = static_cast<uint32_t>(rng.NextBounded(cardinality));
    }
    auto decoded = DecodeDimColumn(EncodeDimColumn(values));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, values);
  }
}

TEST_P(CodecPropertyTest, MetricRoundtripRandom) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = rng.NextBounded(2000);
    std::vector<double> values(n);
    for (auto& v : values) {
      switch (rng.NextBounded(3)) {
        case 0:
          v = rng.NextNormal(0, 1e6);
          break;
        case 1:
          v = std::floor(rng.NextLognormal(3, 2));
          break;
        default:
          v = static_cast<double>(rng.Next());
          break;
      }
    }
    auto decoded = DecodeMetricColumn(EncodeMetricColumn(values));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_DOUBLE_EQ((*decoded)[i], values[i]);
    }
  }
}

TEST_P(CodecPropertyTest, ZipfColumnsCompress) {
  Rng rng(GetParam());
  std::vector<uint32_t> values(20000);
  for (auto& v : values) {
    v = static_cast<uint32_t>(rng.NextZipf(64, 1.3));
  }
  std::sort(values.begin(), values.end());  // clustered, like brick columns
  auto encoded = EncodeDimColumn(values);
  EXPECT_LT(encoded.size(), values.size() * sizeof(uint32_t) / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace scalewall::cubrick
