// Unit tests for ExecuteDistributed (the query-coordinator role) and a
// parameterized sweep over the proxy's coordinator-location strategies.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cluster/cluster.h"
#include "core/deployment.h"
#include "cubrick/coordinator.h"
#include "cubrick/server.h"
#include "discovery/service_discovery.h"
#include "sim/simulation.h"
#include "workload/generators.h"

namespace scalewall::cubrick {
namespace {

class MapDirectory : public ServerDirectory {
 public:
  void Add(CubrickServer* server) { servers_[server->server_id()] = server; }
  CubrickServer* Lookup(cluster::ServerId id) const override {
    auto it = servers_.find(id);
    return it == servers_.end() ? nullptr : it->second;
  }

 private:
  std::map<cluster::ServerId, CubrickServer*> servers_;
};

// A hand-wired single-region setup: 4 servers, one 4-partition table with
// one partition per server, authoritative discovery mappings.
class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest()
      : sim_(71),
        cluster_(cluster::Cluster::Build({.regions = 1,
                                          .racks_per_region = 1,
                                          .servers_per_rack = 5})),
        sd_(&sim_),
        catalog_(1000) {
    schema_ = workload::MakeSchema(2, 64, 8, 1);
    catalog_.CreateTable("t", schema_, /*initial_partitions=*/4);
    for (cluster::ServerId id : cluster_.AllServers()) {
      servers_.push_back(std::make_unique<CubrickServer>(
          &sim_, &cluster_, &catalog_, id, CubrickServerOptions{}));
      servers_.back()->SetDirectory(&directory_);
      directory_.Add(servers_.back().get());
    }
    Rng rng(5);
    rows_ = workload::GenerateRows(schema_, 400, rng);
    for (uint32_t p = 0; p < 4; ++p) {
      sm::ShardId shard = *catalog_.ShardForPartition("t", p);
      servers_[p]->AddShard(shard, sm::ShardRole::kPrimary);
      sd_.Publish("svc", shard, p);
      // Round-robin rows across partitions for the test.
      std::vector<Row> bucket;
      for (size_t i = p; i < rows_.size(); i += 4) bucket.push_back(rows_[i]);
      servers_[p]->InsertRows("t", p, bucket);
    }
    sim_.RunFor(1 * kMinute);  // discovery propagation

    context_.region = 0;
    context_.service = "svc";
    context_.simulation = &sim_;
    context_.cluster = &cluster_;
    context_.catalog = &catalog_;
    context_.directory = &directory_;
    context_.discovery = &sd_;
    context_.failure_model = sim::TransientFailureModel(0.0);
  }

  Query CountQuery() {
    Query q;
    q.table = "t";
    q.aggregations = {Aggregation{0, AggOp::kCount}};
    return q;
  }

  // The redesigned entry point: compile a plan, bundle the per-attempt
  // inputs in an ExecContext, execute.
  DistributedOutcome Run(const Query& q, cluster::ServerId coordinator,
                         Rng& rng) {
    ExecutionPlan plan = BuildExecutionPlan(context_, q, coordinator);
    ExecContext ectx;
    ectx.region = &context_;
    ectx.rng = &rng;
    return ExecuteDistributed(plan, ectx);
  }

  sim::Simulation sim_;
  cluster::Cluster cluster_;
  discovery::ServiceDiscovery sd_;
  Catalog catalog_;
  MapDirectory directory_;
  std::vector<std::unique_ptr<CubrickServer>> servers_;
  std::vector<Row> rows_;
  TableSchema schema_;
  RegionContext context_;
};

TEST_F(CoordinatorTest, MergesAllPartials) {
  Rng rng(1);
  DistributedOutcome outcome = Run(CountQuery(), /*coordinator=*/0, rng);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, AggOp::kCount), 400.0);
  EXPECT_EQ(outcome.fanout, 4);
  EXPECT_EQ(outcome.num_partitions, 4u);
  EXPECT_GT(outcome.latency, 0);
  // A joinless query plans as the seed path and the outcome echoes it.
  EXPECT_EQ(outcome.strategy, JoinStrategy::kReplicated);
  EXPECT_EQ(outcome.merge_fanin, 0);
  EXPECT_EQ(outcome.tree_depth, 0);
}

TEST_F(CoordinatorTest, UnknownTableFails) {
  Query q = CountQuery();
  q.table = "ghost";
  Rng rng(1);
  EXPECT_EQ(Run(q, 0, rng).status.code(), StatusCode::kNotFound);
}

TEST_F(CoordinatorTest, InvalidQueryRejectedBeforeFanout) {
  Query q = CountQuery();
  q.filters = {FilterRange{7, 0, 1}};
  Rng rng(1);
  EXPECT_EQ(Run(q, 0, rng).status.code(), StatusCode::kInvalidArgument);
}

TEST_F(CoordinatorTest, DeadCoordinatorUnavailable) {
  cluster_.SetHealth(0, cluster::ServerHealth::kDown);
  Rng rng(1);
  EXPECT_EQ(Run(CountQuery(), 0, rng).status.code(),
            StatusCode::kUnavailable);
}

TEST_F(CoordinatorTest, DeadPartitionHostFailsRegionAttempt) {
  cluster_.SetHealth(2, cluster::ServerHealth::kDown);
  Rng rng(1);
  DistributedOutcome outcome = Run(CountQuery(), 0, rng);
  // "all table partitions required by the query are required to be
  // available within that region": the attempt fails, retryable.
  EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(outcome.status.IsRetryable());
}

TEST_F(CoordinatorTest, TransientFailureReportsFailedServer) {
  context_.failure_model = sim::TransientFailureModel(1.0);  // always fail
  Rng rng(1);
  DistributedOutcome outcome = Run(CountQuery(), 0, rng);
  EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(outcome.failed_server, cluster::kInvalidServer);
}

TEST_F(CoordinatorTest, ForwardedPartitionsStillAnswer) {
  // Move partition 1's shard from server 1 to the spare server 4
  // manually, leaving server 1 in the forwarding window (discovery still
  // points at it). Server 0 would refuse: it already holds t#0 (shard
  // collision).
  sm::ShardId shard = *catalog_.ShardForPartition("t", 1);
  EXPECT_EQ(servers_[0]->PrepareAddShard(shard, 1).code(),
            StatusCode::kNonRetryable);
  ASSERT_TRUE(servers_[4]->PrepareAddShard(shard, 1).ok());
  ASSERT_TRUE(servers_[1]->PrepareDropShard(shard, 4).ok());
  ASSERT_TRUE(servers_[4]->AddShard(shard, sm::ShardRole::kPrimary).ok());
  // Discovery deliberately not updated: clients resolve to server 1,
  // which forwards.
  Rng rng(1);
  DistributedOutcome outcome = Run(CountQuery(), 2, rng);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, AggOp::kCount), 400.0);
  EXPECT_GT(servers_[1]->stats().forwarded_requests, 0);
}

TEST_F(CoordinatorTest, GroupByMergedAcrossPartitions) {
  Query q = CountQuery();
  q.group_by = {1};
  Rng rng(1);
  DistributedOutcome outcome = Run(q, 0, rng);
  ASSERT_TRUE(outcome.status.ok());
  std::map<uint32_t, double> expected;
  for (const Row& r : rows_) expected[r.dims[1]] += 1;
  ASSERT_EQ(outcome.result.num_groups(), expected.size());
  for (const auto& [key, count] : expected) {
    EXPECT_DOUBLE_EQ(*outcome.result.Value({key}, 0, AggOp::kCount), count);
  }
}

// --- coordinator-location strategy sweep through the proxy ---

class StrategySweepTest
    : public ::testing::TestWithParam<CoordinatorStrategy> {};

TEST_P(StrategySweepTest, BalancedOrConcentratedAsDocumented) {
  core::DeploymentOptions options;
  options.seed = 31;
  options.topology.regions = 1;
  options.topology.racks_per_region = 4;
  options.topology.servers_per_rack = 4;
  options.max_shards = 5000;
  options.per_host_failure_probability = 0.0;  // isolate strategy effects
  options.proxy_options.strategy = GetParam();
  core::Deployment dep(options);
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema).ok());
  Rng rng(3);
  dep.LoadRows("t", workload::GenerateRows(schema, 1000, rng));
  // Generous warmup: discovery propagation has a long tail (Figure 4c)
  // and there is only one region here, so no retry can mask a stale view.
  dep.RunFor(60 * kSecond);

  cubrick::Query q;
  q.table = "t";
  q.aggregations = {cubrick::Aggregation{0, cubrick::AggOp::kCount}};
  const int n = 400;
  int ok = 0;
  for (int i = 0; i < n; ++i) {
    if (dep.Query(cubrick::QueryRequest(q)).status.ok()) ++ok;
    dep.RunFor(50 * kMillisecond);
  }
  EXPECT_EQ(ok, n);  // every strategy answers correctly

  const cubrick::CubrickProxy::Stats& stats = dep.proxy().stats();
  int64_t max_picks = 0;
  for (const auto& [server, picks] : stats.coordinator_picks) {
    max_picks = std::max(max_picks, picks);
  }
  if (GetParam() == CoordinatorStrategy::kPartitionZero) {
    // All picks land on partition 0's host.
    EXPECT_EQ(stats.coordinator_picks.size(), 1u);
    EXPECT_EQ(max_picks, n);
  } else {
    // Balanced: spread over the table's 8 partition hosts.
    EXPECT_GT(stats.coordinator_picks.size(), 4u);
    EXPECT_LT(max_picks, n / 2);
  }
  if (GetParam() == CoordinatorStrategy::kForwardFromZero) {
    EXPECT_EQ(stats.extra_hops, n);
  } else {
    EXPECT_EQ(stats.extra_hops, 0);
  }
  if (GetParam() == CoordinatorStrategy::kLookupThenRandom) {
    EXPECT_EQ(stats.extra_roundtrips, n);
  } else if (GetParam() == CoordinatorStrategy::kCachedRandom) {
    EXPECT_EQ(stats.extra_roundtrips, 1);  // cold cache only
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategySweepTest,
    ::testing::Values(CoordinatorStrategy::kPartitionZero,
                      CoordinatorStrategy::kForwardFromZero,
                      CoordinatorStrategy::kLookupThenRandom,
                      CoordinatorStrategy::kCachedRandom),
    [](const ::testing::TestParamInfo<CoordinatorStrategy>& info) {
      return std::string(CoordinatorStrategyName(info.param));
    });

}  // namespace
}  // namespace scalewall::cubrick
