// Tests for replicated dimension tables and join execution (Section
// II-B: small tables replicated to every node to speed up joins with
// distributed fact tables).

#include <gtest/gtest.h>

#include <map>

#include "core/deployment.h"
#include "cubrick/partition.h"
#include "cubrick/replicated_table.h"
#include "cubrick/sql.h"
#include "workload/generators.h"

namespace scalewall::cubrick {
namespace {

// campaign dimension: key = campaign id, attributes = (advertiser, tier).
ReplicatedTable CampaignDim() {
  ReplicatedTable dim("campaigns", /*key_cardinality=*/16,
                      {Dimension{"advertiser", 4, 1},
                       Dimension{"tier", 3, 1}});
  for (uint32_t c = 0; c < 12; ++c) {  // campaigns 12..15 left unmapped
    dim.Set(DimensionEntry{c, {c % 4, c % 3}});
  }
  return dim;
}

TEST(ReplicatedTableTest, SetAndLookup) {
  ReplicatedTable dim = CampaignDim();
  EXPECT_EQ(dim.num_entries(), 12u);
  EXPECT_EQ(dim.Attribute(5, 0), 1u);   // 5 % 4
  EXPECT_EQ(dim.Attribute(5, 1), 2u);   // 5 % 3
  EXPECT_EQ(dim.Attribute(13, 0), kNoAttribute);  // unmapped key
  EXPECT_EQ(dim.Attribute(99, 0), kNoAttribute);  // out of domain
  EXPECT_EQ(dim.Attribute(5, 7), kNoAttribute);   // unknown attribute
  EXPECT_EQ(dim.AttributeIndex("tier"), 1);
  EXPECT_EQ(dim.AttributeIndex("nope"), -1);
}

TEST(ReplicatedTableTest, SetValidation) {
  ReplicatedTable dim("d", 8, {Dimension{"a", 4, 1}});
  EXPECT_EQ(dim.Set(DimensionEntry{9, {0}}).code(),
            StatusCode::kInvalidArgument);  // key out of domain
  EXPECT_EQ(dim.Set(DimensionEntry{1, {}}).code(),
            StatusCode::kInvalidArgument);  // arity
  EXPECT_EQ(dim.Set(DimensionEntry{1, {9}}).code(),
            StatusCode::kInvalidArgument);  // attribute domain
  EXPECT_TRUE(dim.Set(DimensionEntry{1, {3}}).ok());
  // Overwrite does not double-count.
  EXPECT_TRUE(dim.Set(DimensionEntry{1, {2}}).ok());
  EXPECT_EQ(dim.num_entries(), 1u);
  EXPECT_EQ(dim.Attribute(1, 0), 2u);
}

// Fact schema: (day, campaign); metric spend. Campaign is dim 1.
TableSchema FactSchema() {
  TableSchema schema;
  schema.dimensions = {Dimension{"day", 32, 8},
                       Dimension{"campaign", 16, 4}};
  schema.metrics = {Metric{"spend"}};
  return schema;
}

class JoinExecutionTest : public ::testing::Test {
 protected:
  JoinExecutionTest()
      : dim_(CampaignDim()), part_("facts", 0, FactSchema()) {
    // spend = campaign id; one row per (day, campaign) for days 0..3.
    for (uint32_t day = 0; day < 4; ++day) {
      for (uint32_t c = 0; c < 16; ++c) {
        part_.Insert(Row{{day, c}, {static_cast<double>(c)}});
      }
    }
    join_.tables = {&dim_};
  }

  Query JoinQuery() {
    Query q;
    q.table = "facts";
    q.joins = {Join{/*fact_dimension=*/1, "campaigns", /*attribute=*/0}};
    q.aggregations = {Aggregation{0, AggOp::kSum},
                      Aggregation{0, AggOp::kCount}};
    return q;
  }

  ReplicatedTable dim_;
  TablePartition part_;
  JoinContext join_;
};

TEST_F(JoinExecutionTest, GroupByJoinedAttribute) {
  Query q = JoinQuery();
  q.group_by_joins = {0};  // GROUP BY campaigns.advertiser
  QueryResult result(2);
  ASSERT_TRUE(part_.Execute(q, result, &join_).ok());
  // Campaigns 0..11 map to advertisers c%4; campaigns 12..15 are
  // unmapped and drop out (inner join).
  ASSERT_EQ(result.num_groups(), 4u);
  std::map<uint32_t, double> expected_sum, expected_count;
  for (uint32_t day = 0; day < 4; ++day) {
    for (uint32_t c = 0; c < 12; ++c) {
      expected_sum[c % 4] += c;
      expected_count[c % 4] += 1;
    }
  }
  for (const auto& [adv, sum] : expected_sum) {
    EXPECT_DOUBLE_EQ(*result.Value({adv}, 0, AggOp::kSum), sum);
    EXPECT_DOUBLE_EQ(*result.Value({adv}, 1, AggOp::kCount),
                     expected_count[adv]);
  }
}

TEST_F(JoinExecutionTest, FilterOnJoinedAttribute) {
  Query q = JoinQuery();
  q.join_filters = {JoinFilter{0, /*lo=*/2, /*hi=*/2}};  // advertiser = 2
  QueryResult result(2);
  ASSERT_TRUE(part_.Execute(q, result, &join_).ok());
  // Campaigns with c%4==2 among 0..11: 2, 6, 10; spend sums 2+6+10 per day.
  EXPECT_DOUBLE_EQ(*result.Value({}, 0, AggOp::kSum), 4.0 * 18.0);
  EXPECT_DOUBLE_EQ(*result.Value({}, 1, AggOp::kCount), 12.0);
}

TEST_F(JoinExecutionTest, MixedGroupByFactAndJoin) {
  Query q = JoinQuery();
  q.group_by = {0};        // day
  q.group_by_joins = {0};  // advertiser
  QueryResult result(2);
  ASSERT_TRUE(part_.Execute(q, result, &join_).ok());
  EXPECT_EQ(result.num_groups(), 4u * 4u);  // 4 days x 4 advertisers
  // Key order: fact dims first, then joined attributes.
  EXPECT_DOUBLE_EQ(*result.Value({2, 1}, 1, AggOp::kCount), 3.0);
}

TEST_F(JoinExecutionTest, SecondAttributeJoin) {
  Query q = JoinQuery();
  q.joins[0].attribute = 1;  // tier
  q.group_by_joins = {0};
  QueryResult result(2);
  ASSERT_TRUE(part_.Execute(q, result, &join_).ok());
  EXPECT_EQ(result.num_groups(), 3u);
}

TEST_F(JoinExecutionTest, MissingJoinContextRejected) {
  Query q = JoinQuery();
  QueryResult result(2);
  EXPECT_EQ(part_.Execute(q, result, nullptr).code(),
            StatusCode::kFailedPrecondition);
  JoinContext empty;
  EXPECT_EQ(part_.Execute(q, result, &empty).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(JoinExecutionTest, ValidationCatchesBadIndices) {
  Query q = JoinQuery();
  q.joins[0].fact_dimension = 9;
  EXPECT_FALSE(q.Validate(FactSchema()).ok());
  q = JoinQuery();
  q.group_by_joins = {5};
  EXPECT_FALSE(q.Validate(FactSchema()).ok());
  q = JoinQuery();
  q.join_filters = {JoinFilter{3, 0, 1}};
  EXPECT_FALSE(q.Validate(FactSchema()).ok());
}

// --- SQL JOIN syntax ---

class SqlJoinTest : public ::testing::Test {
 protected:
  SqlJoinTest() : catalog_(1000) {
    catalog_.CreateTable("facts", FactSchema(), 4);
    catalog_.CreateReplicatedTable("campaigns", 16,
                                   {Dimension{"advertiser", 4, 1},
                                    Dimension{"tier", 3, 1}});
  }
  Catalog catalog_;
};

TEST_F(SqlJoinTest, ParseJoinQuery) {
  auto q = ParseQuery(
      "SELECT campaigns.advertiser, SUM(spend) FROM facts "
      "JOIN campaigns ON campaign "
      "WHERE day >= 10 AND campaigns.tier = 2 "
      "GROUP BY campaigns.advertiser ORDER BY SUM(spend) DESC LIMIT 3",
      FactSchema(), &catalog_);
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->joins.size(), 2u);  // advertiser + tier references
  EXPECT_EQ(q->joins[0].dimension_table, "campaigns");
  EXPECT_EQ(q->joins[0].fact_dimension, 1);
  ASSERT_EQ(q->group_by_joins.size(), 1u);
  EXPECT_EQ(q->joins[q->group_by_joins[0]].attribute, 0);  // advertiser
  ASSERT_EQ(q->join_filters.size(), 1u);
  EXPECT_EQ(q->joins[q->join_filters[0].join].attribute, 1);  // tier
  EXPECT_EQ(q->join_filters[0].lo, 2u);
  EXPECT_EQ(q->join_filters[0].hi, 2u);
  ASSERT_EQ(q->filters.size(), 1u);  // the plain day filter
  EXPECT_EQ(q->limit, 3u);
}

TEST_F(SqlJoinTest, RepeatedAttributeReusesJoinEntry) {
  auto q = ParseQuery(
      "SELECT campaigns.advertiser, COUNT(*) FROM facts "
      "JOIN campaigns ON campaign "
      "WHERE campaigns.advertiser BETWEEN 1 AND 2 "
      "GROUP BY campaigns.advertiser",
      FactSchema(), &catalog_);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->joins.size(), 1u);  // same attribute referenced twice
  EXPECT_EQ(q->group_by_joins[0], q->join_filters[0].join);
}

TEST_F(SqlJoinTest, JoinErrors) {
  // JOIN without catalog.
  EXPECT_FALSE(ParseQuery(
                   "SELECT SUM(spend) FROM facts JOIN campaigns ON campaign",
                   FactSchema())
                   .ok());
  // Unknown dimension table.
  EXPECT_FALSE(ParseQuery(
                   "SELECT SUM(spend) FROM facts JOIN ghost ON campaign",
                   FactSchema(), &catalog_)
                   .ok());
  // Unknown fact column in ON.
  EXPECT_FALSE(ParseQuery(
                   "SELECT SUM(spend) FROM facts JOIN campaigns ON nope",
                   FactSchema(), &catalog_)
                   .ok());
  // Qualified reference to a non-joined table.
  EXPECT_FALSE(ParseQuery(
                   "SELECT SUM(spend) FROM facts WHERE campaigns.tier = 1",
                   FactSchema(), &catalog_)
                   .ok());
  // Unknown attribute.
  EXPECT_FALSE(ParseQuery(
                   "SELECT SUM(spend) FROM facts JOIN campaigns ON campaign "
                   "WHERE campaigns.nope = 1",
                   FactSchema(), &catalog_)
                   .ok());
  // IN on a joined attribute is unsupported.
  EXPECT_FALSE(ParseQuery(
                   "SELECT SUM(spend) FROM facts JOIN campaigns ON campaign "
                   "WHERE campaigns.tier IN (1, 2)",
                   FactSchema(), &catalog_)
                   .ok());
  // Joined column in SELECT but not grouped.
  EXPECT_FALSE(ParseQuery(
                   "SELECT campaigns.tier, SUM(spend) FROM facts "
                   "JOIN campaigns ON campaign",
                   FactSchema(), &catalog_)
                   .ok());
}

TEST_F(SqlJoinTest, FormatRoundtrip) {
  const char* sql =
      "SELECT campaigns.advertiser, SUM(spend) FROM facts "
      "JOIN campaigns ON campaign WHERE campaigns.tier = 2 "
      "GROUP BY campaigns.advertiser";
  auto q = ParseQuery(sql, FactSchema(), &catalog_);
  ASSERT_TRUE(q.ok());
  std::string rendered = FormatQuery(*q, FactSchema(), &catalog_);
  EXPECT_NE(rendered.find("JOIN campaigns ON campaign"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("campaigns.tier = 2"), std::string::npos);
  auto q2 = ParseQuery(rendered, FactSchema(), &catalog_);
  ASSERT_TRUE(q2.ok()) << rendered << " -> " << q2.status();
  EXPECT_EQ(q2->joins.size(), q->joins.size());
  EXPECT_EQ(q2->join_filters.size(), q->join_filters.size());
  EXPECT_EQ(q2->group_by_joins.size(), q->group_by_joins.size());
}

TEST_F(SqlJoinTest, ParsedJoinExecutes) {
  ReplicatedTable dim = CampaignDim();
  JoinContext join;
  join.tables = {&dim};
  TablePartition part("facts", 0, FactSchema());
  for (uint32_t c = 0; c < 16; ++c) {
    part.Insert(Row{{0, c}, {static_cast<double>(c)}});
  }
  auto q = ParseQuery(
      "SELECT campaigns.advertiser, SUM(spend) FROM facts "
      "JOIN campaigns ON campaign GROUP BY campaigns.advertiser",
      FactSchema(), &catalog_);
  ASSERT_TRUE(q.ok()) << q.status();
  QueryResult result(1);
  ASSERT_TRUE(part.Execute(*q, result, &join).ok());
  EXPECT_EQ(result.num_groups(), 4u);
  // advertiser 0: campaigns 0,4,8 -> 12.
  EXPECT_DOUBLE_EQ(*result.Value({0}, 0, AggOp::kSum), 12.0);
}

// --- end to end through a deployment ---

class DeploymentJoinTest : public ::testing::Test {
 protected:
  DeploymentJoinTest() {
    core::DeploymentOptions options;
    options.seed = 91;
    options.topology.regions = 3;
    options.topology.racks_per_region = 3;
    options.topology.servers_per_rack = 4;
    options.max_shards = 5000;
    options.per_host_failure_probability = 0.0;
    dep_ = std::make_unique<core::Deployment>(options);

    EXPECT_TRUE(dep_->CreateDimensionTable(
                        "campaigns", 16,
                        {Dimension{"advertiser", 4, 1}})
                    .ok());
    std::vector<DimensionEntry> entries;
    for (uint32_t c = 0; c < 12; ++c) {
      entries.push_back(DimensionEntry{c, {c % 4}});
    }
    EXPECT_TRUE(dep_->LoadDimensionEntries("campaigns", entries).ok());

    EXPECT_TRUE(dep_->CreateTable("facts", FactSchema()).ok());
    std::vector<Row> rows;
    for (uint32_t day = 0; day < 32; ++day) {
      for (uint32_t c = 0; c < 16; ++c) {
        rows.push_back(Row{{day, c}, {1.0}});
      }
    }
    EXPECT_TRUE(dep_->LoadRows("facts", rows).ok());
    dep_->RunFor(15 * kSecond);
  }

  std::unique_ptr<core::Deployment> dep_;
};

TEST_F(DeploymentJoinTest, DistributedJoinMatchesReference) {
  Query q;
  q.table = "facts";
  q.joins = {Join{1, "campaigns", 0}};
  q.group_by_joins = {0};
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  auto outcome = dep_->Query(cubrick::QueryRequest(q));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  ASSERT_EQ(outcome.result.num_groups(), 4u);
  // 12 mapped campaigns x 32 days / 4 advertisers = 96 rows each.
  for (uint32_t adv = 0; adv < 4; ++adv) {
    EXPECT_DOUBLE_EQ(*outcome.result.Value({adv}, 0, AggOp::kCount), 96.0);
  }
}

TEST_F(DeploymentJoinTest, JoinAgainstUnknownDimensionTableFails) {
  Query q;
  q.table = "facts";
  q.joins = {Join{1, "ghost", 0}};
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  EXPECT_EQ(dep_->Query(cubrick::QueryRequest(q)).status.code(), StatusCode::kNotFound);

  q.joins = {Join{1, "campaigns", 7}};
  EXPECT_EQ(dep_->Query(cubrick::QueryRequest(q)).status.code(), StatusCode::kInvalidArgument);
}

TEST_F(DeploymentJoinTest, JoinSurvivesFailover) {
  auto shard = dep_->catalog().ShardForPartition("facts", 0);
  cluster::ServerId victim =
      dep_->sm(0).GetAssignment(*shard)->replicas[0].server;
  dep_->cluster().SetHealth(victim, cluster::ServerHealth::kDown);
  dep_->RunFor(2 * kMinute);
  // The failed-over server recovered fact data cross-region and was
  // re-seeded with the dimension replica on restart paths.
  Query q;
  q.table = "facts";
  q.joins = {Join{1, "campaigns", 0}};
  q.group_by_joins = {0};
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  auto outcome = dep_->Query(cubrick::QueryRequest(q, 0));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_DOUBLE_EQ(*outcome.result.Value({0}, 0, AggOp::kCount), 96.0);
}

TEST_F(DeploymentJoinTest, DimensionUpdatesVisibleEverywhere) {
  // Map a previously-unmapped campaign; counts grow accordingly.
  ASSERT_TRUE(dep_->LoadDimensionEntries(
                      "campaigns", {DimensionEntry{12, {0}}})
                  .ok());
  Query q;
  q.table = "facts";
  q.joins = {Join{1, "campaigns", 0}};
  q.group_by_joins = {0};
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  for (cluster::RegionId region = 0; region < 3; ++region) {
    auto outcome = dep_->Query(cubrick::QueryRequest(q, region));
    ASSERT_TRUE(outcome.status.ok());
    EXPECT_DOUBLE_EQ(*outcome.result.Value({0}, 0, AggOp::kCount), 128.0);
  }
}

TEST_F(DeploymentJoinTest, NameCollisionWithCubeTableRejected) {
  EXPECT_EQ(dep_->CreateDimensionTable("facts", 4, {}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(dep_->CreateTable("campaigns", FactSchema()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(dep_->LoadDimensionEntries("ghost", {}).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(dep_->DropDimensionTable("campaigns").ok());
  EXPECT_EQ(dep_->DropDimensionTable("campaigns").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace scalewall::cubrick
