// End-to-end tests for morsel-parallel partition scans (ISSUE 2):
// merge determinism across worker counts (byte-identical finalized
// rows), the concurrent-decompression latch, and cooperative
// cancellation through TablePartition::Execute.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "cubrick/partition.h"
#include "exec/cancel.h"
#include "exec/morsel.h"
#include "exec/thread_pool.h"
#include "workload/generators.h"

namespace scalewall::cubrick {
namespace {

// Bitwise double equality: the determinism contract is byte-identical
// output, not approximate equality.
bool BitIdentical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool RowsBitIdentical(const std::vector<ResultRow>& a,
                      const std::vector<ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key) return false;
    if (a[i].values.size() != b[i].values.size()) return false;
    for (size_t j = 0; j < a[i].values.size(); ++j) {
      if (!BitIdentical(a[i].values[j], b[i].values[j])) return false;
    }
  }
  return true;
}

TablePartition MakeLoadedPartition(uint64_t rows, uint64_t seed) {
  TableSchema schema = workload::MakeSchema(/*dims=*/3, /*cardinality=*/64,
                                            /*range_size=*/16, /*metrics=*/2);
  TablePartition part("scans", 0, schema);
  Rng rng(seed);
  for (const Row& row : workload::GenerateRows(schema, rows, rng)) {
    EXPECT_TRUE(part.Insert(row).ok());
  }
  return part;
}

Query GroupByQuery() {
  Query q;
  q.table = "scans";
  q.group_by = {0, 1};
  q.aggregations = {Aggregation{0, AggOp::kSum}, Aggregation{0, AggOp::kAvg},
                    Aggregation{1, AggOp::kMax}, Aggregation{1, AggOp::kCount}};
  q.filters = {FilterRange{2, 0, 47}};  // prunes ~a quarter of the bricks
  return q;
}

TEST(ParallelScanTest, MergeDeterminismAcrossWorkerCounts) {
  TablePartition part = MakeLoadedPartition(/*rows=*/40000, /*seed=*/1234);
  const Query query = GroupByQuery();

  QueryResult serial(query.aggregations.size());
  ASSERT_TRUE(part.Execute(query, serial).ok());
  ASSERT_GT(serial.num_groups(), 0u);
  const std::vector<ResultRow> reference = MaterializeRows(serial, query);

  for (int workers : {1, 2, 8}) {
    exec::ThreadPool pool(workers);
    exec::ExecOptions opts;
    opts.num_workers = workers;
    opts.pool = &pool;
    opts.morsel_rows = 512;  // force many morsels per brick
    QueryResult parallel(query.aggregations.size());
    ASSERT_TRUE(part.Execute(query, parallel, nullptr, &opts).ok());
    const std::vector<ResultRow> rows = MaterializeRows(parallel, query);
    EXPECT_TRUE(RowsBitIdentical(reference, rows))
        << "finalized rows diverge from the serial path at " << workers
        << " workers";
    // Diagnostics counters match the serial path too: one bricks_scanned
    // bump per surviving brick, same rows and pruning.
    EXPECT_EQ(parallel.rows_scanned, serial.rows_scanned);
    EXPECT_EQ(parallel.bricks_scanned, serial.bricks_scanned);
    EXPECT_EQ(parallel.bricks_pruned, serial.bricks_pruned);
  }
}

TEST(ParallelScanTest, RepeatedParallelRunsAreStable) {
  TablePartition part = MakeLoadedPartition(/*rows=*/20000, /*seed=*/99);
  const Query query = GroupByQuery();
  exec::ThreadPool pool(8);
  exec::ExecOptions opts;
  opts.num_workers = 8;
  opts.pool = &pool;
  opts.morsel_rows = 256;

  std::vector<ResultRow> first;
  for (int run = 0; run < 5; ++run) {
    QueryResult result(query.aggregations.size());
    ASSERT_TRUE(part.Execute(query, result, nullptr, &opts).ok());
    std::vector<ResultRow> rows = MaterializeRows(result, query);
    if (run == 0) {
      first = std::move(rows);
    } else {
      EXPECT_TRUE(RowsBitIdentical(first, rows))
          << "run " << run << " differs — scheduling leaked into the result";
    }
  }
}

TEST(ParallelScanTest, CompressedBricksDecompressExactlyOnce) {
  TablePartition part = MakeLoadedPartition(/*rows=*/30000, /*seed=*/7);
  const Query query = GroupByQuery();

  QueryResult serial(query.aggregations.size());
  ASSERT_TRUE(part.Execute(query, serial).ok());

  for (auto& [id, brick] : part.mutable_bricks()) brick.Compress();
  ASSERT_EQ(part.decompressions(), 0);

  exec::ThreadPool pool(8);
  exec::ExecOptions opts;
  opts.num_workers = 8;
  opts.pool = &pool;
  opts.morsel_rows = 128;  // many morsels race into each brick
  QueryResult parallel(query.aggregations.size());
  ASSERT_TRUE(part.Execute(query, parallel, nullptr, &opts).ok());

  // The per-brick latch admits exactly one decompression per scanned
  // brick no matter how many morsels hit it concurrently.
  EXPECT_EQ(part.decompressions(), serial.bricks_scanned);
  EXPECT_TRUE(RowsBitIdentical(MaterializeRows(serial, query),
                               MaterializeRows(parallel, query)));
}

TEST(ParallelScanTest, PreCancelledTokenStopsBeforeAnyMorsel) {
  TablePartition part = MakeLoadedPartition(/*rows=*/10000, /*seed=*/5);
  const Query query = GroupByQuery();

  exec::ThreadPool pool(4);
  exec::CancelToken cancel;
  cancel.RequestCancel();  // the deadline budget is already spent
  exec::ExecOptions opts;
  opts.num_workers = 4;
  opts.pool = &pool;
  opts.cancel = &cancel;

  QueryResult result(query.aggregations.size());
  Status status = part.Execute(query, result, nullptr, &opts);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  // No morsel ran: nothing was scanned or merged.
  EXPECT_EQ(result.rows_scanned, 0);
  EXPECT_EQ(result.num_groups(), 0u);
}

TEST(ParallelScanTest, SerialPathHonoursCancelToken) {
  TablePartition part = MakeLoadedPartition(/*rows=*/5000, /*seed=*/5);
  const Query query = GroupByQuery();

  exec::CancelToken cancel;
  cancel.RequestCancel();
  exec::ExecOptions opts;  // no pool: serial path, token still honoured
  opts.cancel = &cancel;

  QueryResult result(query.aggregations.size());
  Status status = part.Execute(query, result, nullptr, &opts);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(result.rows_scanned, 0);
}

TEST(ParallelScanTest, MidScanCancellationStopsSchedulingMorsels) {
  TablePartition part = MakeLoadedPartition(/*rows=*/40000, /*seed=*/21);
  Query query = GroupByQuery();
  query.filters.clear();  // scan everything: plenty of morsels

  exec::ThreadPool pool(2);
  exec::CancelToken cancel;
  exec::ExecOptions opts;
  opts.num_workers = 2;
  opts.pool = &pool;
  opts.morsel_rows = 64;
  opts.cancel = &cancel;

  // Cancel from another pool task racing the scan: queued morsels past
  // the flip must be skipped, surfacing kCancelled.
  exec::TaskGroup killer(&pool);
  killer.Run([&cancel] { cancel.RequestCancel(); });

  QueryResult result(query.aggregations.size());
  Status status = part.Execute(query, result, nullptr, &opts);
  killer.Wait();
  // Either the scan lost the race entirely (finished first) or it was
  // cut short; a cut-short scan must not have merged partial groups.
  if (!status.ok()) {
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_EQ(result.num_groups(), 0u);
  }
}

}  // namespace
}  // namespace scalewall::cubrick
