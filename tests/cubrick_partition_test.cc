// Unit and property tests for TablePartition: insertion, brick pruning,
// execution correctness against a brute-force reference, hotness decay.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "cubrick/partition.h"
#include "workload/generators.h"

namespace scalewall::cubrick {
namespace {

TableSchema SmallSchema() {
  TableSchema schema;
  schema.dimensions = {
      Dimension{"a", 64, 8},
      Dimension{"b", 16, 4},
  };
  schema.metrics = {Metric{"m0"}, Metric{"m1"}};
  return schema;
}

TEST(PartitionTest, InsertValidatesArityAndDomain) {
  TablePartition part("t", 0, SmallSchema());
  EXPECT_TRUE(part.Insert(Row{{1, 2}, {1.0, 2.0}}).ok());
  EXPECT_EQ(part.Insert(Row{{1}, {1.0, 2.0}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(part.Insert(Row{{1, 2}, {1.0}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(part.Insert(Row{{64, 2}, {1.0, 2.0}}).code(),
            StatusCode::kInvalidArgument);  // out of domain
  EXPECT_EQ(part.num_rows(), 1u);
}

TEST(PartitionTest, RowsLandInDistinctBricks) {
  TablePartition part("t", 0, SmallSchema());
  part.Insert(Row{{0, 0}, {1, 1}});
  part.Insert(Row{{0, 1}, {1, 1}});   // same brick (bucket 0,0)
  part.Insert(Row{{8, 0}, {1, 1}});   // bucket (1,0)
  part.Insert(Row{{0, 4}, {1, 1}});   // bucket (0,1)
  EXPECT_EQ(part.num_bricks(), 3u);
  EXPECT_EQ(part.num_rows(), 4u);
}

TEST(PartitionTest, PruningSkipsNonMatchingBricks) {
  TablePartition part("t", 0, SmallSchema());
  for (uint32_t a = 0; a < 64; a += 8) {
    part.Insert(Row{{a, 0}, {1.0, 0.0}});  // 8 bricks along dim a
  }
  Query q;
  q.table = "t";
  q.filters = {FilterRange{0, 0, 7}};  // only bucket 0
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  QueryResult result(1);
  ASSERT_TRUE(part.Execute(q, result).ok());
  EXPECT_EQ(result.bricks_scanned, 1);
  EXPECT_EQ(result.bricks_pruned, 7);
  EXPECT_EQ(*result.Value({}, 0, AggOp::kSum), 1.0);
}

TEST(PartitionTest, PrunedBricksStayCold) {
  TablePartition part("t", 0, SmallSchema());
  part.Insert(Row{{0, 0}, {1, 0}});
  part.Insert(Row{{63, 0}, {1, 0}});
  Query q;
  q.table = "t";
  q.filters = {FilterRange{0, 0, 7}};
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  QueryResult result(1);
  part.Execute(q, result);
  int hot = 0, cold = 0;
  for (const auto& [id, brick] : part.bricks()) {
    (brick.hotness() > 0 ? hot : cold)++;
  }
  EXPECT_EQ(hot, 1);
  EXPECT_EQ(cold, 1);
}

TEST(PartitionTest, ExecuteValidatesQuery) {
  TablePartition part("t", 0, SmallSchema());
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{5, AggOp::kSum}};  // bad metric index
  QueryResult result(1);
  EXPECT_EQ(part.Execute(q, result).code(), StatusCode::kInvalidArgument);
}

TEST(PartitionTest, ExportRoundtripsAllRows) {
  TablePartition part("t", 0, SmallSchema());
  Rng rng(5);
  auto rows = workload::GenerateRows(SmallSchema(), 500, rng);
  for (const Row& r : rows) ASSERT_TRUE(part.Insert(r).ok());
  auto exported = part.ExportRows();
  EXPECT_EQ(exported.size(), 500u);
  double sum_in = 0, sum_out = 0;
  for (const Row& r : rows) sum_in += r.metrics[0];
  for (const Row& r : exported) sum_out += r.metrics[0];
  EXPECT_DOUBLE_EQ(sum_in, sum_out);
}

TEST(PartitionTest, DecayHotnessIsStochastic) {
  TablePartition part("t", 0, SmallSchema());
  Rng data_rng(5);
  auto rows = workload::GenerateRows(SmallSchema(), 2000, data_rng);
  for (const Row& r : rows) part.Insert(r);
  // Touch everything.
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  QueryResult result(1);
  part.Execute(q, result);
  Rng decay_rng(9);
  part.DecayHotness(decay_rng, 0.5);
  int decayed = 0, kept = 0;
  for (const auto& [id, brick] : part.bricks()) {
    (brick.hotness() == 0 ? decayed : kept)++;
  }
  EXPECT_GT(decayed, 0);
  EXPECT_GT(kept, 0);
}

TEST(PartitionTest, FootprintsTrackCompression) {
  TablePartition part("t", 0, SmallSchema());
  Rng rng(5);
  for (const Row& r : workload::GenerateRows(SmallSchema(), 1000, rng)) {
    part.Insert(r);
  }
  size_t raw = part.MemoryFootprint();
  EXPECT_EQ(raw, part.DecompressedSize());
  for (Brick* b : part.BricksByHotness(true)) b->Compress();
  EXPECT_LT(part.MemoryFootprint(), raw);
  EXPECT_EQ(part.DecompressedSize(), raw);
  EXPECT_EQ(part.SsdFootprint(), 0u);
}

TEST(PartitionTest, BricksByHotnessOrdering) {
  TablePartition part("t", 0, SmallSchema());
  part.Insert(Row{{0, 0}, {1, 0}});
  part.Insert(Row{{63, 15}, {1, 0}});
  // Touch only the second brick twice via a filtered query.
  Query q;
  q.table = "t";
  q.filters = {FilterRange{0, 56, 63}};
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  QueryResult result(1);
  part.Execute(q, result);
  part.Execute(q, result);
  auto coldest = part.BricksByHotness(/*coldest_first=*/true);
  ASSERT_EQ(coldest.size(), 2u);
  EXPECT_LE(coldest[0]->hotness(), coldest[1]->hotness());
  auto hottest = part.BricksByHotness(/*coldest_first=*/false);
  EXPECT_GE(hottest[0]->hotness(), hottest[1]->hotness());
}

// --- rollup ingestion (Cubrick's cell model) ---

TEST(RollupTest, IdenticalDimVectorsMergeIntoOneCell) {
  TableSchema schema = SmallSchema();
  schema.rollup = true;
  TablePartition part("t", 0, schema);
  ASSERT_TRUE(part.Insert(Row{{1, 2}, {10.0, 1.0}}).ok());
  ASSERT_TRUE(part.Insert(Row{{1, 2}, {5.0, 2.0}}).ok());   // same cell
  ASSERT_TRUE(part.Insert(Row{{1, 3}, {7.0, 0.0}}).ok());   // new cell
  EXPECT_EQ(part.num_rows(), 2u);  // cells, not raw rows

  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kSum},
                    Aggregation{0, AggOp::kCount}};
  QueryResult result(2);
  ASSERT_TRUE(part.Execute(q, result).ok());
  EXPECT_DOUBLE_EQ(*result.Value({}, 0, AggOp::kSum), 22.0);
  EXPECT_DOUBLE_EQ(*result.Value({}, 1, AggOp::kCount), 2.0);
}

TEST(RollupTest, MergeSurvivesCompressionCycles) {
  TableSchema schema = SmallSchema();
  schema.rollup = true;
  TablePartition part("t", 0, schema);
  ASSERT_TRUE(part.Insert(Row{{1, 2}, {1.0, 0.0}}).ok());
  // Compress, then insert into the same cell: the rollup index must be
  // rebuilt after transparent decompression.
  for (Brick* b : part.BricksByHotness(true)) b->Compress();
  ASSERT_TRUE(part.Insert(Row{{1, 2}, {2.0, 0.0}}).ok());
  ASSERT_TRUE(part.Insert(Row{{9, 2}, {4.0, 0.0}}).ok());
  EXPECT_EQ(part.num_rows(), 2u);
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  QueryResult result(1);
  ASSERT_TRUE(part.Execute(q, result).ok());
  EXPECT_DOUBLE_EQ(*result.Value({}, 0, AggOp::kSum), 7.0);
}

TEST(RollupTest, EquivalentToPostAggregation) {
  // A rollup table must answer GROUP BY over all dimensions exactly like
  // a raw table would.
  TableSchema raw_schema = SmallSchema();
  TableSchema rollup_schema = SmallSchema();
  rollup_schema.rollup = true;
  TablePartition raw("t", 0, raw_schema);
  TablePartition rolled("t", 0, rollup_schema);
  Rng rng(77);
  // Small domain so duplicates are common.
  for (int i = 0; i < 2000; ++i) {
    Row row{{static_cast<uint32_t>(rng.NextBounded(8)),
             static_cast<uint32_t>(rng.NextBounded(4))},
            {static_cast<double>(rng.NextBounded(10)), 1.0}};
    ASSERT_TRUE(raw.Insert(row).ok());
    ASSERT_TRUE(rolled.Insert(row).ok());
  }
  EXPECT_LT(rolled.num_rows(), raw.num_rows());
  EXPECT_LE(rolled.num_rows(), 32u);  // at most 8x4 cells
  Query q;
  q.table = "t";
  q.group_by = {0, 1};
  q.aggregations = {Aggregation{0, AggOp::kSum},
                    Aggregation{1, AggOp::kSum}};
  QueryResult raw_result(2), rolled_result(2);
  ASSERT_TRUE(raw.Execute(q, raw_result).ok());
  ASSERT_TRUE(rolled.Execute(q, rolled_result).ok());
  ASSERT_EQ(raw_result.num_groups(), rolled_result.num_groups());
  for (const auto& [key, states] : raw_result.groups()) {
    EXPECT_DOUBLE_EQ(*rolled_result.Value(key, 0, AggOp::kSum),
                     states[0].Finalize(AggOp::kSum));
    EXPECT_DOUBLE_EQ(*rolled_result.Value(key, 1, AggOp::kSum),
                     states[1].Finalize(AggOp::kSum));
  }
}

TEST(RollupTest, ExportPreservesCells) {
  TableSchema schema = SmallSchema();
  schema.rollup = true;
  TablePartition part("t", 0, schema);
  part.Insert(Row{{1, 1}, {3.0, 0.0}});
  part.Insert(Row{{1, 1}, {4.0, 0.0}});
  auto rows = part.ExportRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].metrics[0], 7.0);
}

// Property test: partition execution must equal a brute-force scan over
// the raw rows, for random queries, with and without compression.
class PartitionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionPropertyTest, MatchesBruteForceReference) {
  Rng rng(GetParam());
  TableSchema schema = workload::MakeSchema(
      /*dims=*/3, /*cardinality=*/50, /*range_size=*/7, /*metrics=*/2);
  TablePartition part("t", 0, schema);
  auto rows = workload::GenerateRows(schema, 2000, rng);
  for (const Row& r : rows) ASSERT_TRUE(part.Insert(r).ok());

  for (int trial = 0; trial < 10; ++trial) {
    Query q = workload::GenerateQuery("t", schema, rng);
    if (trial % 2 == 1) {
      // Exercise the compressed path too.
      for (Brick* b : part.BricksByHotness(true)) b->Compress();
    }
    QueryResult result(q.aggregations.size());
    ASSERT_TRUE(part.Execute(q, result).ok());

    // Brute force.
    std::map<std::vector<uint32_t>, std::vector<AggState>> expected;
    for (const Row& r : rows) {
      bool pass = true;
      for (const FilterRange& f : q.filters) {
        uint32_t v = r.dims[f.dimension];
        if (v < f.lo || v > f.hi) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      std::vector<uint32_t> key;
      for (int g : q.group_by) key.push_back(r.dims[g]);
      auto& states = expected[key];
      states.resize(q.aggregations.size());
      for (size_t a = 0; a < q.aggregations.size(); ++a) {
        const Aggregation& agg = q.aggregations[a];
        states[a].Add(agg.op == AggOp::kCount ? 1.0 : r.metrics[agg.metric]);
      }
    }
    ASSERT_EQ(result.num_groups(), expected.size()) << "trial " << trial;
    for (const auto& [key, states] : expected) {
      for (size_t a = 0; a < states.size(); ++a) {
        auto got = result.Value(key, a, q.aggregations[a].op);
        ASSERT_TRUE(got.ok());
        EXPECT_DOUBLE_EQ(*got,
                         states[a].Finalize(q.aggregations[a].op));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace scalewall::cubrick
