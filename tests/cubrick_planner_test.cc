// Planner tests: plan compilation (cost-based join-strategy and
// merge-topology choice), the shuffle-join building blocks, and a
// randomized differential suite proving that every join strategy ×
// merge topology produces results byte-identical to the replicated-dim
// interpreted oracle — across direct and sim transports, serial and
// morsel-parallel scans (DESIGN.md §15).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/deployment.h"
#include "cubrick/coordinator.h"
#include "cubrick/partition.h"
#include "cubrick/planner.h"
#include "cubrick/replicated_table.h"

namespace scalewall::cubrick {
namespace {

// Exact (bitwise-value) equality of two merged results — the guarantee
// every strategy/topology combination must meet on integral datasets.
bool SameResult(const QueryResult& a, const QueryResult& b) {
  if (a.num_groups() != b.num_groups()) return false;
  auto it_b = b.groups().begin();
  for (auto it_a = a.groups().begin(); it_a != a.groups().end();
       ++it_a, ++it_b) {
    if (it_a->first != it_b->first) return false;
    if (it_a->second.size() != it_b->second.size()) return false;
    for (size_t i = 0; i < it_a->second.size(); ++i) {
      const AggState& x = it_a->second[i];
      const AggState& y = it_b->second[i];
      if (x.sum != y.sum || x.count != y.count || x.min != y.min ||
          x.max != y.max) {
        return false;
      }
    }
  }
  return true;
}

// --- tree shape ---

TEST(TreeShapeTest, DepthAndChunkSizes) {
  EXPECT_EQ(TreeDepth(0, 8), 0);
  EXPECT_EQ(TreeDepth(1, 8), 1);
  EXPECT_EQ(TreeDepth(8, 8), 1);
  EXPECT_EQ(TreeDepth(9, 8), 2);
  EXPECT_EQ(TreeDepth(64, 8), 2);
  EXPECT_EQ(TreeDepth(65, 8), 3);
  EXPECT_EQ(TreeDepth(64, 2), 6);
  // fanin < 2 = flat: one chunk covering everything.
  EXPECT_EQ(TreeChunkSize(64, 0), 64);
  EXPECT_EQ(TreeChunkSize(64, 1), 64);
  EXPECT_EQ(TreeChunkSize(8, 2), 4);
  EXPECT_EQ(TreeChunkSize(9, 2), 5);
  EXPECT_EQ(TreeChunkSize(7, 3), 3);
  // ceil(n / fanin) never yields more than `fanin` chunks.
  for (int n = 1; n <= 40; ++n) {
    for (int fanin = 2; fanin <= 9; ++fanin) {
      const int chunk = TreeChunkSize(n, fanin);
      EXPECT_LE((n + chunk - 1) / chunk, fanin) << n << "/" << fanin;
    }
  }
}

// --- shuffle building blocks ---

TableSchema FactSchema() {
  TableSchema schema;
  schema.dimensions = {Dimension{"day", 16, 4}, Dimension{"campaign", 32, 8}};
  schema.metrics = {Metric{"spend"}};
  return schema;
}

// campaigns: advertiser (card 5) and tier (card 3); keys k % 7 == 0 are
// deliberately unmapped so the inner-join drop path is exercised.
ReplicatedTable CampaignDim() {
  ReplicatedTable dim("campaigns", /*key_cardinality=*/32,
                      {Dimension{"advertiser", 5, 1}, Dimension{"tier", 3, 1}});
  for (uint32_t k = 0; k < 32; ++k) {
    if (k % 7 == 0) continue;
    dim.Set(DimensionEntry{k, {k % 5, k % 3}});
  }
  dim.set_epoch(1);
  return dim;
}

Query JoinQuery() {
  Query q;
  q.table = "facts";
  q.joins = {Join{/*fact_dimension=*/1, "campaigns", /*attribute=*/0}};
  q.group_by_joins = {0};
  q.aggregations = {Aggregation{0, AggOp::kSum}, Aggregation{0, AggOp::kCount}};
  return q;
}

TEST(ShuffleBlocksTest, StageOneQueryShape) {
  Query q = JoinQuery();
  q.group_by = {0};
  q.join_filters = {JoinFilter{0, 1, 3}};
  q.order_by = 0;
  q.limit = 5;
  Query stage1 = MakeShuffleScanQuery(q);
  // Raw join keys append after the plain dims; joins and presentation
  // are stripped so the scan runs on the plain (cacheable) kernels.
  ASSERT_EQ(stage1.group_by.size(), 2u);
  EXPECT_EQ(stage1.group_by[0], 0);
  EXPECT_EQ(stage1.group_by[1], 1);
  EXPECT_TRUE(stage1.joins.empty());
  EXPECT_TRUE(stage1.group_by_joins.empty());
  EXPECT_TRUE(stage1.join_filters.empty());
  EXPECT_EQ(stage1.order_by, -1);
  EXPECT_EQ(stage1.limit, 0u);
  EXPECT_TRUE(stage1.Validate(FactSchema()).ok());
}

TEST(ShuffleBlocksTest, BucketIsDeterministicAndBounded) {
  QueryResult::GroupKey key = {3, 17};
  const uint32_t b = ShuffleBucket(key, 1, 8);
  EXPECT_LT(b, 8u);
  EXPECT_EQ(ShuffleBucket(key, 1, 8), b);  // stable
  // Only the trailing join keys feed the hash: a different plain prefix
  // maps to the same bucket.
  QueryResult::GroupKey other = {9, 17};
  EXPECT_EQ(ShuffleBucket(other, 1, 8), b);
  EXPECT_EQ(ShuffleBucket(key, 1, 1), 0u);
  // All buckets reachable over the key domain (32 keys, 8 buckets).
  std::map<uint32_t, int> seen;
  for (uint32_t k = 0; k < 32; ++k) {
    ++seen[ShuffleBucket({k}, 1, 8)];
  }
  EXPECT_GT(seen.size(), 4u);
}

TEST(ShuffleBlocksTest, MappingMatchesReplicatedScan) {
  ReplicatedTable dim = CampaignDim();
  JoinContext join;
  join.tables = {&dim};
  TablePartition part("facts", 0, FactSchema());
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    part.Insert(Row{{static_cast<uint32_t>(rng.NextBounded(16)),
                     static_cast<uint32_t>(rng.NextBounded(32))},
                    {static_cast<double>(rng.NextBounded(100))}});
  }
  Query q = JoinQuery();
  q.group_by = {0};
  q.join_filters = {JoinFilter{0, 0, 3}};

  QueryResult reference(q.aggregations.size());
  ASSERT_TRUE(part.Execute(q, reference, &join).ok());

  // Shuffle stages: scan raw, bucket, map each bucket, fold ascending.
  const Query stage1 = MakeShuffleScanQuery(q);
  QueryResult scanned(stage1.aggregations.size());
  ASSERT_TRUE(part.Execute(stage1, scanned).ok());
  std::map<uint32_t, QueryResult> buckets;
  for (const auto& [key, states] : scanned.groups()) {
    auto [it, unused] = buckets.try_emplace(
        ShuffleBucket(key, q.joins.size(), 8), q.aggregations.size());
    for (size_t a = 0; a < states.size(); ++a) {
      it->second.AccumulateState(key, a, states[a]);
    }
  }
  QueryResult folded(q.aggregations.size());
  for (const auto& [bucket, partial] : buckets) {
    auto mapped = ApplyShuffleMapping(q, join, partial);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    folded.Merge(*mapped);
  }
  EXPECT_TRUE(SameResult(reference, folded));
}

TEST(ShuffleBlocksTest, MappingRejectsMismatchedContext) {
  Query q = JoinQuery();
  QueryResult bucket(q.aggregations.size());
  JoinContext empty;
  EXPECT_EQ(ApplyShuffleMapping(q, empty, bucket).status().code(),
            StatusCode::kInvalidArgument);
  JoinContext null_table;
  null_table.tables = {nullptr};
  EXPECT_EQ(ApplyShuffleMapping(q, null_table, bucket).status().code(),
            StatusCode::kInvalidArgument);
}

// --- plan compilation ---

class PlanCompilationTest : public ::testing::Test {
 protected:
  PlanCompilationTest() : catalog_(1000) {
    catalog_.CreateTable("facts", FactSchema(), /*initial_partitions=*/8);
    catalog_.CreateTable("wide", FactSchema(), /*initial_partitions=*/64);
    catalog_.CreateReplicatedTable(
        "campaigns", 32,
        {Dimension{"advertiser", 5, 1}, Dimension{"tier", 3, 1}});
    ctx_.catalog = &catalog_;
  }

  Catalog catalog_;
  RegionContext ctx_;
};

TEST_F(PlanCompilationTest, JoinlessQueryKeepsSeedPlan) {
  Query q;
  q.table = "facts";
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  ExecutionPlan plan = BuildExecutionPlan(ctx_, q, /*coordinator=*/3);
  EXPECT_EQ(plan.coordinator, 3u);
  EXPECT_EQ(plan.join_strategy, JoinStrategy::kReplicated);
  EXPECT_EQ(plan.merge_fanin, 0);
  EXPECT_EQ(plan.merge_topology(), MergeTopology::kFlat);
  // Join costs not evaluated for joinless queries; merge costs always.
  EXPECT_LT(plan.cost_replicated_ms, 0.0);
  EXPECT_GE(plan.cost_flat_merge_ms, 0.0);
  EXPECT_NE(plan.explain.find("strategy=replicated"), std::string::npos)
      << plan.explain;
}

TEST_F(PlanCompilationTest, RequestPinsStrategyAndTopology) {
  Query q = JoinQuery();
  for (JoinStrategy pin : {JoinStrategy::kReplicated, JoinStrategy::kBroadcast,
                           JoinStrategy::kShuffle}) {
    ExecutionPlan plan = BuildExecutionPlan(ctx_, q, 0, pin,
                                            /*merge_fanin_hint=*/4);
    EXPECT_EQ(plan.join_strategy, pin);
    EXPECT_EQ(plan.merge_fanin, 4);
    EXPECT_EQ(plan.merge_topology(), MergeTopology::kTree);
    // Every candidate cost is evaluated for the audit trail.
    EXPECT_GE(plan.cost_replicated_ms, 0.0);
    EXPECT_GE(plan.cost_broadcast_ms, 0.0);
    EXPECT_GE(plan.cost_shuffle_ms, 0.0);
  }
  // Hint 1 pins flat even when a tree would win on cost.
  ctx_.planner.merge_cost_per_partial = 5 * kMillisecond;
  ExecutionPlan flat = BuildExecutionPlan(ctx_, q, 0, JoinStrategy::kAuto, 1);
  EXPECT_EQ(flat.merge_fanin, 0);
}

TEST_F(PlanCompilationTest, AutoPicksCheapestJoinStrategy) {
  Query q = JoinQuery();
  // Defaults: a tiny dim makes replication essentially free.
  EXPECT_EQ(BuildExecutionPlan(ctx_, q, 0).join_strategy,
            JoinStrategy::kReplicated);
  // Make resident replicas expensive and shipping cheap: broadcast wins.
  ctx_.planner.replica_mem_ms_per_mb_host = 1e6;
  ctx_.planner.ship_ms_per_mb = 1.0;
  ctx_.planner.shuffle_map_ms = 1e6;
  EXPECT_EQ(BuildExecutionPlan(ctx_, q, 0).join_strategy,
            JoinStrategy::kBroadcast);
  // Make any dim movement expensive: shuffle (which never moves the
  // dim) wins.
  ctx_.planner.ship_ms_per_mb = 1e9;
  ctx_.planner.shuffle_map_ms = 0.001;
  EXPECT_EQ(BuildExecutionPlan(ctx_, q, 0).join_strategy,
            JoinStrategy::kShuffle);
}

TEST_F(PlanCompilationTest, AutoPicksTreeWhenCoordinatorFaninIsTheWall) {
  Query q;
  q.table = "wide";  // 64 partitions
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  // Seed model (merge_cost_per_partial = 0): flat and tree tie, flat
  // keeps the seed behaviour.
  EXPECT_EQ(BuildExecutionPlan(ctx_, q, 0).merge_fanin, 0);
  // A real per-partial fold cost makes the 64-wide flat fan-in lose to
  // depth-2 fanin-8 merges.
  ctx_.planner.merge_cost_per_partial = 1 * kMillisecond;
  ExecutionPlan plan = BuildExecutionPlan(ctx_, q, 0);
  EXPECT_EQ(plan.merge_fanin, 8);
  EXPECT_EQ(plan.merge_topology(), MergeTopology::kTree);
  EXPECT_LT(plan.cost_tree_merge_ms, plan.cost_flat_merge_ms);
  EXPECT_NE(plan.explain.find("merge=tree"), std::string::npos)
      << plan.explain;
}

TEST_F(PlanCompilationTest, UnknownTableDegradesToSeedPlan) {
  Query q = JoinQuery();
  q.table = "ghost";
  ExecutionPlan plan = BuildExecutionPlan(ctx_, q, 0);
  EXPECT_EQ(plan.join_strategy, JoinStrategy::kReplicated);
  EXPECT_EQ(plan.merge_fanin, 0);
}

// --- randomized differential suite ---
//
// Random join queries execute under all three join strategies × both
// merge topologies, on three deployments (direct transport with serial
// scans, direct with morsel-parallel scans, sim transport), and every
// merged result must be byte-identical to an interpreted oracle that
// replays the raw rows through the replicated-dim join semantics.
// Metric values are integral, so sums are exact in any merge
// association and "byte-identical" is meaningful across topologies.

struct OracleAgg {
  double sum = 0;
  double count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

std::map<QueryResult::GroupKey, std::vector<OracleAgg>> InterpretOracle(
    const Query& q, const std::vector<Row>& rows, const ReplicatedTable& dim) {
  std::map<QueryResult::GroupKey, std::vector<OracleAgg>> groups;
  for (const Row& row : rows) {
    bool pass = true;
    for (const FilterRange& f : q.filters) {
      const uint32_t v = row.dims[f.dimension];
      if (v < f.lo || v > f.hi) {
        pass = false;
        break;
      }
    }
    for (const JoinFilter& f : q.join_filters) {
      if (!pass) break;
      const Join& jn = q.joins[f.join];
      const uint32_t attr =
          dim.Attribute(row.dims[jn.fact_dimension], jn.attribute);
      if (attr == kNoAttribute || attr < f.lo || attr > f.hi) pass = false;
    }
    if (!pass) continue;
    QueryResult::GroupKey key;
    for (int d : q.group_by) key.push_back(row.dims[d]);
    for (int g : q.group_by_joins) {
      const Join& jn = q.joins[g];
      const uint32_t attr =
          dim.Attribute(row.dims[jn.fact_dimension], jn.attribute);
      if (attr == kNoAttribute) {
        pass = false;
        break;
      }
      key.push_back(attr);
    }
    if (!pass) continue;
    auto [it, unused] =
        groups.try_emplace(key, q.aggregations.size(), OracleAgg{});
    for (size_t a = 0; a < q.aggregations.size(); ++a) {
      const double m = row.metrics[q.aggregations[a].metric];
      OracleAgg& agg = it->second[a];
      agg.sum += m;
      agg.count += 1;
      agg.min = std::min(agg.min, m);
      agg.max = std::max(agg.max, m);
    }
  }
  return groups;
}

class PlannerDifferentialTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDays = 16;
  static constexpr uint32_t kCampaigns = 32;

  std::unique_ptr<core::Deployment> MakeDeployment(
      core::TransportMode transport, int scan_workers) {
    core::DeploymentOptions options;
    options.seed = 97;
    options.topology.regions = 1;
    options.topology.racks_per_region = 2;
    options.topology.servers_per_rack = 4;
    options.max_shards = 5000;
    options.per_host_failure_probability = 0.0;
    options.transport = transport;
    options.server_options.scan_workers = scan_workers;
    auto dep = std::make_unique<core::Deployment>(options);
    EXPECT_TRUE(dep->CreateDimensionTable(
                        "campaigns", kCampaigns,
                        {Dimension{"advertiser", 5, 1},
                         Dimension{"tier", 3, 1}})
                    .ok());
    std::vector<DimensionEntry> entries;
    for (uint32_t k = 0; k < kCampaigns; ++k) {
      if (k % 7 == 0) continue;  // unmapped: inner-join drops
      entries.push_back(DimensionEntry{k, {k % 5, k % 3}});
    }
    EXPECT_TRUE(dep->LoadDimensionEntries("campaigns", entries).ok());
    EXPECT_TRUE(dep->CreateTable("facts", FactSchema()).ok());
    EXPECT_TRUE(dep->LoadRows("facts", rows_).ok());
    dep->RunFor(15 * kSecond);
    return dep;
  }

  void SetUp() override {
    Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
      rows_.push_back(Row{{static_cast<uint32_t>(rng.NextBounded(kDays)),
                           static_cast<uint32_t>(rng.NextBounded(kCampaigns))},
                          {static_cast<double>(rng.NextBounded(1000))}});
    }
  }

  // One random join query. Always joins campaigns; grouping, filters
  // and aggregation sets vary.
  Query RandomJoinQuery(Rng& rng) {
    Query q;
    q.table = "facts";
    q.joins = {Join{1, "campaigns", static_cast<int>(rng.NextBounded(2))}};
    if (rng.NextBounded(2) == 0) q.group_by_joins = {0};
    if (rng.NextBounded(3) == 0) {
      const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(4));
      q.join_filters = {
          JoinFilter{0, lo, lo + static_cast<uint32_t>(rng.NextBounded(3))}};
    }
    if (rng.NextBounded(2) == 0) {
      q.group_by.push_back(0);
    }
    if (rng.NextBounded(3) == 0) {
      const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(kDays));
      q.filters = {FilterRange{
          0, lo, lo + static_cast<uint32_t>(rng.NextBounded(kDays))}};
    }
    q.aggregations = {Aggregation{0, AggOp::kSum},
                      Aggregation{0, AggOp::kCount}};
    if (rng.NextBounded(2) == 0) {
      q.aggregations.push_back(Aggregation{0, AggOp::kMin});
      q.aggregations.push_back(Aggregation{0, AggOp::kMax});
    }
    return q;
  }

  void CheckAgainstOracle(const Query& q, const QueryResult& result) {
    const ReplicatedTable dim = CampaignDim();
    auto oracle = InterpretOracle(q, rows_, dim);
    ASSERT_EQ(result.num_groups(), oracle.size());
    for (const auto& [key, aggs] : oracle) {
      for (size_t a = 0; a < q.aggregations.size(); ++a) {
        const OracleAgg& expect = aggs[a];
        switch (q.aggregations[a].op) {
          case AggOp::kSum:
            EXPECT_EQ(*result.Value(key, a, AggOp::kSum), expect.sum);
            break;
          case AggOp::kCount:
            EXPECT_EQ(*result.Value(key, a, AggOp::kCount), expect.count);
            break;
          case AggOp::kMin:
            EXPECT_EQ(*result.Value(key, a, AggOp::kMin), expect.min);
            break;
          case AggOp::kMax:
            EXPECT_EQ(*result.Value(key, a, AggOp::kMax), expect.max);
            break;
          default:
            break;
        }
      }
    }
  }

  std::vector<Row> rows_;
};

TEST_F(PlannerDifferentialTest, AllStrategiesAndTopologiesMatchOracle) {
  struct Variant {
    const char* name;
    std::unique_ptr<core::Deployment> dep;
  };
  Variant variants[] = {
      {"direct-serial", MakeDeployment(core::TransportMode::kDirect, 0)},
      {"direct-parallel", MakeDeployment(core::TransportMode::kDirect, 4)},
      {"sim-serial", MakeDeployment(core::TransportMode::kSim, 0)},
  };
  const JoinStrategy strategies[] = {JoinStrategy::kReplicated,
                                     JoinStrategy::kBroadcast,
                                     JoinStrategy::kShuffle};
  const int fanins[] = {0, 2, 3};

  Rng rng(101);
  for (int i = 0; i < 12; ++i) {
    const Query q = RandomJoinQuery(rng);
    for (Variant& v : variants) {
      const QueryResult* baseline = nullptr;
      QueryResult first;
      for (JoinStrategy strategy : strategies) {
        for (int fanin : fanins) {
          QueryRequest request(q);
          request.join_strategy = strategy;
          request.merge_fanin = fanin;
          auto outcome = v.dep->Query(std::move(request));
          ASSERT_TRUE(outcome.status.ok())
              << v.name << " q" << i << " "
              << JoinStrategyName(strategy) << "/fanin=" << fanin << ": "
              << outcome.status;
          // The outcome echoes the executed plan.
          EXPECT_EQ(outcome.join_strategy, strategy);
          EXPECT_EQ(outcome.merge_fanin, fanin >= 2 ? fanin : 0);
          if (fanin >= 2 && outcome.num_partitions > 1) {
            EXPECT_GT(outcome.tree_depth, 0);
          }
          if (baseline == nullptr) {
            first = outcome.result;
            baseline = &first;
            CheckAgainstOracle(q, first);
          } else {
            EXPECT_TRUE(SameResult(*baseline, outcome.result))
                << v.name << " q" << i << " "
                << JoinStrategyName(strategy) << "/fanin=" << fanin
                << " diverged from replicated/flat";
          }
        }
      }
    }
  }
}

TEST_F(PlannerDifferentialTest, AutoStrategyMatchesOracleToo) {
  auto dep = MakeDeployment(core::TransportMode::kDirect, 0);
  Rng rng(7);
  for (int i = 0; i < 4; ++i) {
    const Query q = RandomJoinQuery(rng);
    QueryRequest request(q);  // join_strategy = kAuto, merge_fanin = 0
    auto outcome = dep->Query(std::move(request));
    ASSERT_TRUE(outcome.status.ok()) << outcome.status;
    // The resolved strategy is echoed (never kAuto after planning).
    EXPECT_NE(outcome.join_strategy, JoinStrategy::kAuto);
    CheckAgainstOracle(q, outcome.result);
  }
}

}  // namespace
}  // namespace scalewall::cubrick
