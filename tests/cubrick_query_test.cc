// Unit tests for query validation, aggregation states, and result merging
// (the coordinator's partial-result merge, Section IV-C).

#include <gtest/gtest.h>

#include "cubrick/query.h"
#include "cubrick/schema.h"

namespace scalewall::cubrick {
namespace {

TableSchema Schema() {
  TableSchema schema;
  schema.dimensions = {Dimension{"d0", 10, 2}, Dimension{"d1", 10, 2}};
  schema.metrics = {Metric{"m0"}};
  return schema;
}

TEST(SchemaTest, ValidateAcceptsGoodSchema) {
  EXPECT_TRUE(Schema().Validate().ok());
}

TEST(SchemaTest, ValidateRejectsBadSchemas) {
  TableSchema empty;
  EXPECT_FALSE(empty.Validate().ok());

  TableSchema zero_card = Schema();
  zero_card.dimensions[0].cardinality = 0;
  EXPECT_FALSE(zero_card.Validate().ok());

  TableSchema zero_range = Schema();
  zero_range.dimensions[0].range_size = 0;
  EXPECT_FALSE(zero_range.Validate().ok());

  TableSchema dup = Schema();
  dup.metrics.push_back(Metric{"d0"});
  EXPECT_FALSE(dup.Validate().ok());

  TableSchema hash = Schema();
  hash.dimensions[0].name = "bad#name";
  EXPECT_FALSE(hash.Validate().ok());
}

TEST(SchemaTest, ColumnIndexLookup) {
  TableSchema schema = Schema();
  EXPECT_EQ(schema.DimensionIndex("d1"), 1);
  EXPECT_EQ(schema.DimensionIndex("nope"), -1);
  EXPECT_EQ(schema.MetricIndex("m0"), 0);
  EXPECT_EQ(schema.MetricIndex("d0"), -1);
}

TEST(QueryValidateTest, CatchesBadIndices) {
  TableSchema schema = Schema();
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  EXPECT_TRUE(q.Validate(schema).ok());

  Query bad_filter = q;
  bad_filter.filters = {FilterRange{2, 0, 1}};
  EXPECT_FALSE(bad_filter.Validate(schema).ok());

  Query inverted = q;
  inverted.filters = {FilterRange{0, 5, 1}};
  EXPECT_FALSE(inverted.Validate(schema).ok());

  Query bad_group = q;
  bad_group.group_by = {7};
  EXPECT_FALSE(bad_group.Validate(schema).ok());

  Query bad_metric = q;
  bad_metric.aggregations = {Aggregation{3, AggOp::kSum}};
  EXPECT_FALSE(bad_metric.Validate(schema).ok());

  Query no_aggs = q;
  no_aggs.aggregations.clear();
  EXPECT_FALSE(no_aggs.Validate(schema).ok());

  // COUNT ignores the metric index.
  Query count_any = q;
  count_any.aggregations = {Aggregation{99, AggOp::kCount}};
  EXPECT_TRUE(count_any.Validate(schema).ok());
}

TEST(AggStateTest, FinalizeAllOps) {
  AggState s;
  for (double v : {4.0, 1.0, 7.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Finalize(AggOp::kSum), 12.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggOp::kCount), 3.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggOp::kMin), 1.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggOp::kMax), 7.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggOp::kAvg), 4.0);
}

TEST(AggStateTest, EmptyAvgIsZero) {
  AggState s;
  EXPECT_DOUBLE_EQ(s.Finalize(AggOp::kAvg), 0.0);
}

TEST(AggStateTest, MergeEqualsCombinedStream) {
  AggState a, b, combined;
  for (double v : {1.0, 2.0, 3.0}) {
    a.Add(v);
    combined.Add(v);
  }
  for (double v : {10.0, -5.0}) {
    b.Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  for (AggOp op : {AggOp::kSum, AggOp::kCount, AggOp::kMin, AggOp::kMax,
                   AggOp::kAvg}) {
    EXPECT_DOUBLE_EQ(a.Finalize(op), combined.Finalize(op));
  }
}

TEST(QueryResultTest, AccumulateAndValue) {
  QueryResult r(2);
  r.Accumulate({1}, 0, 5.0);
  r.Accumulate({1}, 0, 3.0);
  r.Accumulate({1}, 1, 1.0);
  r.Accumulate({2}, 0, 7.0);
  EXPECT_EQ(r.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(*r.Value({1}, 0, AggOp::kSum), 8.0);
  EXPECT_DOUBLE_EQ(*r.Value({2}, 0, AggOp::kSum), 7.0);
  EXPECT_EQ(r.Value({3}, 0, AggOp::kSum).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(r.Value({1}, 5, AggOp::kSum).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryResultTest, MergePartialResults) {
  // Two "partitions" each contribute partials; merge must equal a single
  // pass over all data.
  QueryResult p1(1), p2(1), merged(1), reference(1);
  p1.Accumulate({0}, 0, 1.0);
  p1.Accumulate({1}, 0, 2.0);
  p2.Accumulate({1}, 0, 3.0);
  p2.Accumulate({2}, 0, 4.0);
  for (double v : {1.0}) reference.Accumulate({0}, 0, v);
  for (double v : {2.0, 3.0}) reference.Accumulate({1}, 0, v);
  for (double v : {4.0}) reference.Accumulate({2}, 0, v);

  merged.Merge(p1);
  merged.Merge(p2);
  EXPECT_EQ(merged.num_groups(), reference.num_groups());
  for (const auto& [key, states] : reference.groups()) {
    EXPECT_DOUBLE_EQ(*merged.Value(key, 0, AggOp::kSum),
                     states[0].Finalize(AggOp::kSum));
    EXPECT_DOUBLE_EQ(*merged.Value(key, 0, AggOp::kMin),
                     states[0].Finalize(AggOp::kMin));
  }
}

TEST(QueryResultTest, MergeAccumulatesDiagnostics) {
  QueryResult a(1), b(1);
  a.rows_scanned = 10;
  a.bricks_scanned = 2;
  b.rows_scanned = 5;
  b.bricks_pruned = 3;
  a.Merge(b);
  EXPECT_EQ(a.rows_scanned, 15);
  EXPECT_EQ(a.bricks_scanned, 2);
  EXPECT_EQ(a.bricks_pruned, 3);
}

TEST(QueryResultTest, MergeIntoEmptyAdoptsShape) {
  QueryResult empty(0);
  QueryResult other(2);
  other.Accumulate({}, 1, 3.0);
  empty.Merge(other);
  EXPECT_EQ(empty.num_aggregations(), 2u);
  EXPECT_DOUBLE_EQ(*empty.Value({}, 1, AggOp::kSum), 3.0);
}

TEST(AggOpTest, Names) {
  EXPECT_EQ(AggOpName(AggOp::kSum), "SUM");
  EXPECT_EQ(AggOpName(AggOp::kCount), "COUNT");
  EXPECT_EQ(AggOpName(AggOp::kMin), "MIN");
  EXPECT_EQ(AggOpName(AggOp::kMax), "MAX");
  EXPECT_EQ(AggOpName(AggOp::kAvg), "AVG");
}

}  // namespace
}  // namespace scalewall::cubrick
