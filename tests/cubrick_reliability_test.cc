// Tests for the query reliability pipeline: the proxy's cross-region
// retry budget, partition-cache update rules, blacklist hygiene, deadline
// propagation, and the coordinator's subquery retry + hedging layer.

#include <gtest/gtest.h>

#include <string>

#include "core/deployment.h"
#include "workload/generators.h"

namespace scalewall::core {
namespace {

cubrick::Query CountQuery(const std::string& table) {
  cubrick::Query q;
  q.table = table;
  q.aggregations = {cubrick::Aggregation{0, cubrick::AggOp::kCount},
                    cubrick::Aggregation{0, cubrick::AggOp::kSum}};
  return q;
}

DeploymentOptions SmallOptions(uint64_t seed, int regions) {
  DeploymentOptions options;
  options.seed = seed;
  options.topology.regions = regions;
  options.topology.racks_per_region = 2;
  options.topology.servers_per_rack = 5;
  options.max_shards = 5000;
  options.per_host_failure_probability = 0.0;
  return options;
}

// Regression for the broken retry budget: the old region loop visited
// each region at most once, so with 2 regions and max_attempts = 3 the
// third attempt could never happen and a transient in-region failure was
// never retried in-region.
TEST(ProxyRetryBudgetTest, CyclesRegionsUntilBudgetExhausted) {
  DeploymentOptions options = SmallOptions(/*seed=*/11, /*regions=*/2);
  options.proxy_options.max_attempts = 3;
  // Keep blacklisting out of the way: this test is about the budget.
  options.proxy_options.blacklist_threshold = 1 << 20;
  Deployment dep(options);
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema, TableOptions{.partitions = 1}).ok());
  Rng rng(3);
  dep.LoadRows("t", workload::GenerateRows(schema, 100, rng));
  dep.RunFor(60 * kSecond);

  // Every attempt in every region fails: all three attempts must be
  // spent (the old code stopped at two — one per region).
  dep.region_context(0).failure_model = sim::TransientFailureModel(1.0);
  dep.region_context(1).failure_model = sim::TransientFailureModel(1.0);
  auto outcome = dep.Query(cubrick::QueryRequest(CountQuery("t")));
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, 3);
}

TEST(ProxyRetryBudgetTest, SingleRegionRetriesInRegion) {
  DeploymentOptions options = SmallOptions(/*seed=*/12, /*regions=*/1);
  options.proxy_options.max_attempts = 3;
  options.proxy_options.blacklist_threshold = 1 << 20;
  Deployment dep(options);
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema, TableOptions{.partitions = 1}).ok());
  Rng rng(3);
  dep.LoadRows("t", workload::GenerateRows(schema, 100, rng));
  dep.RunFor(60 * kSecond);

  dep.region_context(0).failure_model = sim::TransientFailureModel(1.0);
  auto outcome = dep.Query(cubrick::QueryRequest(CountQuery("t")));
  EXPECT_FALSE(outcome.status.ok());
  // The old loop gave a single region exactly one attempt.
  EXPECT_EQ(outcome.attempts, 3);
}

// Acceptance criterion: with max_attempts = 3 and 2 regions, a query
// observing two transient failures and then a healthy attempt succeeds.
TEST(ProxyRetryBudgetTest, TwoTransientFailuresThenHealthySucceeds) {
  DeploymentOptions options = SmallOptions(/*seed=*/13, /*regions=*/2);
  options.proxy_options.max_attempts = 3;
  options.proxy_options.blacklist_threshold = 1 << 20;
  Deployment dep(options);
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema, TableOptions{.partitions = 1}).ok());
  Rng rng(3);
  dep.LoadRows("t", workload::GenerateRows(schema, 100, rng));
  dep.RunFor(60 * kSecond);

  // Each attempt touches one host and fails with probability 0.5, so
  // (fail, fail, success) sequences occur with probability 1/8 per
  // query; with 200 queries and a fixed seed several must occur — and
  // they can only succeed if the third attempt exists.
  dep.region_context(0).failure_model = sim::TransientFailureModel(0.5);
  dep.region_context(1).failure_model = sim::TransientFailureModel(0.5);
  int third_attempt_successes = 0;
  int successes = 0;
  for (int i = 0; i < 200; ++i) {
    auto outcome = dep.Query(cubrick::QueryRequest(CountQuery("t")));
    if (outcome.status.ok()) {
      ++successes;
      if (outcome.attempts == 3) ++third_attempt_successes;
    }
    dep.RunFor(100 * kMillisecond);
  }
  EXPECT_GT(third_attempt_successes, 0);
  // 1 - 0.5^3 = 87.5% expected success overall.
  EXPECT_GT(successes, 150);
}

// The partition count is returned "as part of query results metadata"
// (Section IV-C): failed attempts return no results, so they must not
// refresh the cache.
TEST(ProxyCacheTest, OnlySuccessfulAttemptsUpdatePartitionCache) {
  DeploymentOptions options = SmallOptions(/*seed=*/14, /*regions=*/1);
  options.topology.racks_per_region = 4;  // 20 servers >= 16 partitions
  Deployment dep(options);
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema).ok());  // 8 partitions
  Rng rng(3);
  dep.LoadRows("t", workload::GenerateRows(schema, 200, rng));
  dep.RunFor(60 * kSecond);

  ASSERT_TRUE(dep.Query(cubrick::QueryRequest(CountQuery("t"))).status.ok());
  EXPECT_EQ(dep.proxy().CachedPartitions("t"), 8u);

  ASSERT_TRUE(dep.Repartition("t", 16).ok());
  dep.RunFor(2 * kMinute);  // placements + discovery propagation

  // A failing attempt sees the new count in the catalog but must not
  // leak it into the cache.
  dep.region_context(0).failure_model = sim::TransientFailureModel(1.0);
  auto failed = dep.Query(cubrick::QueryRequest(CountQuery("t")));
  EXPECT_FALSE(failed.status.ok());
  EXPECT_EQ(dep.proxy().CachedPartitions("t"), 8u);

  dep.region_context(0).failure_model = sim::TransientFailureModel(0.0);
  auto ok = dep.Query(cubrick::QueryRequest(CountQuery("t")));
  ASSERT_TRUE(ok.status.ok()) << ok.status;
  EXPECT_EQ(ok.num_partitions, 16u);
  EXPECT_EQ(dep.proxy().CachedPartitions("t"), 16u);
}

// Blacklist hygiene: streak windows re-arm after aging out, expired
// entries are swept (week-long simulations must not accumulate state).
TEST(ProxyBlacklistTest, StreakWindowsAndExpirySweep) {
  DeploymentOptions options = SmallOptions(/*seed=*/15, /*regions=*/1);
  options.proxy_options.max_attempts = 1;  // one failure record per query
  options.proxy_options.blacklist_threshold = 3;
  options.proxy_options.blacklist_duration = 30 * kSecond;
  Deployment dep(options);
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema, TableOptions{.partitions = 1}).ok());
  Rng rng(3);
  dep.LoadRows("t", workload::GenerateRows(schema, 100, rng));
  dep.RunFor(60 * kSecond);

  // The single partition's owner is the host every failure lands on.
  sm::ShardId shard = *dep.catalog().ShardForPartition("t", 0);
  cluster::ServerId host =
      *dep.discovery(0).ResolveAuthoritative("cubrick.region0", shard);

  dep.region_context(0).failure_model = sim::TransientFailureModel(1.0);
  cubrick::Query q = CountQuery("t");

  // Two failures: a streak, but below the threshold.
  dep.Query(cubrick::QueryRequest(q));
  dep.Query(cubrick::QueryRequest(q));
  EXPECT_FALSE(dep.proxy().Blacklisted(host));
  EXPECT_EQ(dep.proxy().failure_streaks(), 1u);

  // The streak ages out; two more failures must start a fresh window
  // rather than extending the stale one to the threshold.
  dep.RunFor(31 * kSecond);
  dep.Query(cubrick::QueryRequest(q));
  dep.Query(cubrick::QueryRequest(q));
  EXPECT_FALSE(dep.proxy().Blacklisted(host));

  // Third failure within the fresh window: blacklisted, streak dropped.
  dep.Query(cubrick::QueryRequest(q));
  EXPECT_TRUE(dep.proxy().Blacklisted(host));
  EXPECT_EQ(dep.proxy().failure_streaks(), 0u);
  EXPECT_EQ(dep.proxy().blacklist_size(), 1u);

  // After expiry the entry no longer blacklists, and the sweep erases
  // it (plus any stale streaks) from the maps entirely.
  dep.region_context(0).failure_model = sim::TransientFailureModel(0.0);
  dep.RunFor(31 * kSecond);
  EXPECT_FALSE(dep.proxy().Blacklisted(host));
  ASSERT_TRUE(dep.Query(cubrick::QueryRequest(q)).status.ok());
  EXPECT_EQ(dep.proxy().blacklist_size(), 0u);
  EXPECT_EQ(dep.proxy().failure_streaks(), 0u);
}

// Deadline propagation: the proxy stamps a budget, coordinators decrement
// it per hop, and retries/hedges never run past it.
TEST(DeadlineTest, BudgetCapsAttemptsAndLatency) {
  DeploymentOptions options = SmallOptions(/*seed=*/16, /*regions=*/1);
  options.proxy_options.max_attempts = 5;
  options.proxy_options.blacklist_threshold = 1 << 20;
  options.proxy_options.default_deadline = 100 * kMillisecond;
  options.subquery_policy.max_subquery_retries = 5;
  Deployment dep(options);
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema, TableOptions{.partitions = 1}).ok());
  Rng rng(3);
  dep.LoadRows("t", workload::GenerateRows(schema, 100, rng));
  dep.RunFor(60 * kSecond);

  dep.region_context(0).failure_model = sim::TransientFailureModel(1.0);
  auto outcome = dep.Query(cubrick::QueryRequest(CountQuery("t")));
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded)
      << outcome.status;
  EXPECT_LE(outcome.latency, 100 * kMillisecond);
  EXPECT_GE(dep.proxy().stats().deadline_exceeded, 1);

  // A per-query deadline overrides the proxy default.
  cubrick::Query q = CountQuery("t");
  q.deadline = 40 * kMillisecond;
  auto tight = dep.Query(cubrick::QueryRequest(q));
  EXPECT_EQ(tight.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(tight.latency, 40 * kMillisecond);

  // A healthy query under a generous budget is unaffected.
  dep.region_context(0).failure_model = sim::TransientFailureModel(0.0);
  cubrick::Query roomy = CountQuery("t");
  roomy.deadline = 10 * kSecond;
  auto ok = dep.Query(cubrick::QueryRequest(roomy));
  EXPECT_TRUE(ok.status.ok()) << ok.status;
}

// Chaos-style acceptance: at fan-out 100 under the Figure-2 failure
// model (p=0.1% per host), subquery retry + hedging raise the query
// success rate over the baseline under identical seeds.
TEST(SubqueryReliabilityTest, RetryAndHedgingRaiseSuccessAtFanout100) {
  auto make_options = [] {
    DeploymentOptions options;
    options.seed = 7;
    options.topology.regions = 1;
    options.topology.racks_per_region = 13;
    options.topology.servers_per_rack = 8;  // 104 servers >= 100 partitions
    options.max_shards = 20000;
    options.per_host_failure_probability = 0.001;  // Figure 2's 0.1% curve
    options.proxy_options.max_attempts = 1;  // isolate the subquery layer
    options.proxy_options.blacklist_threshold = 1 << 20;
    return options;
  };
  auto run = [](Deployment& dep) {
    cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
    EXPECT_TRUE(
        dep.CreateTable("wide", schema, TableOptions{.partitions = 100}).ok());
    Rng rng(3);
    dep.LoadRows("wide", workload::GenerateRows(schema, 2000, rng));
    dep.RunFor(2 * kMinute);
    int ok = 0;
    for (int i = 0; i < 120; ++i) {
      if (dep.Query(cubrick::QueryRequest(CountQuery("wide"))).status.ok()) ++ok;
      dep.RunFor(200 * kMillisecond);
    }
    return ok;
  };

  Deployment baseline(make_options());
  int baseline_ok = run(baseline);

  DeploymentOptions reliable_options = make_options();
  reliable_options.subquery_policy.max_subquery_retries = 2;
  reliable_options.subquery_policy.hedge_quantile = 0.95;
  Deployment reliable(reliable_options);
  int reliable_ok = run(reliable);

  // p=0.001 at fan-out ~100 gives ~90% baseline success; two in-region
  // retries push the effective per-host p to 1e-9.
  EXPECT_LT(baseline_ok, 120);
  EXPECT_GT(reliable_ok, baseline_ok);
  EXPECT_EQ(reliable_ok, 120);

  const cubrick::CubrickProxy::Stats& stats = reliable.proxy().stats();
  EXPECT_GT(stats.subquery_retries, 0);
  EXPECT_GT(stats.hedges_fired, 0);
  EXPECT_GT(stats.hedge_wins, 0);
  EXPECT_EQ(stats.failed, 0);

  // The reliability layer's activity is visible in query traces.
  bool traced = false;
  for (const cubrick::QueryTrace& trace : reliable.proxy().RecentTraces()) {
    if (trace.hedges_fired > 0 || trace.subquery_retries > 0) traced = true;
  }
  EXPECT_TRUE(traced);
}

// Same seed, same operations => identical outcomes, with the reliability
// layer enabled (hedging and retries must not break determinism).
TEST(SubqueryReliabilityTest, HedgedExecutionIsDeterministic) {
  auto run = [] {
    DeploymentOptions options = SmallOptions(/*seed=*/21, /*regions=*/1);
    options.per_host_failure_probability = 0.01;
    options.subquery_policy.max_subquery_retries = 2;
    options.subquery_policy.hedge_quantile = 0.9;
    Deployment dep(options);
    cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
    EXPECT_TRUE(dep.CreateTable("t", schema).ok());
    Rng rng(3);
    dep.LoadRows("t", workload::GenerateRows(schema, 500, rng));
    dep.RunFor(60 * kSecond);
    SimDuration total_latency = 0;
    int ok = 0;
    for (int i = 0; i < 40; ++i) {
      auto outcome = dep.Query(cubrick::QueryRequest(CountQuery("t")));
      total_latency += outcome.latency;
      if (outcome.status.ok()) ++ok;
      dep.RunFor(100 * kMillisecond);
    }
    return std::pair<SimDuration, int>(total_latency, ok);
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace scalewall::core
