// Unit tests for CubrickServer: the AppServer endpoint implementations,
// shard-collision rejection, migration data copies, request forwarding,
// metric exports, and the adaptive-compression memory monitor.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cluster/cluster.h"
#include "cubrick/server.h"
#include "sim/simulation.h"
#include "workload/generators.h"

namespace scalewall::cubrick {
namespace {

class MapDirectory : public ServerDirectory {
 public:
  void Add(CubrickServer* server) { servers_[server->server_id()] = server; }
  CubrickServer* Lookup(cluster::ServerId id) const override {
    auto it = servers_.find(id);
    return it == servers_.end() ? nullptr : it->second;
  }

 private:
  std::map<cluster::ServerId, CubrickServer*> servers_;
};

class CubrickServerTest : public ::testing::Test {
 protected:
  CubrickServerTest()
      : sim_(31),
        cluster_(cluster::Cluster::Build({.regions = 2,
                                          .racks_per_region = 1,
                                          .servers_per_rack = 3,
                                          .memory_bytes = 1 << 20,
                                          .ssd_bytes = 8 << 20})),
        catalog_(1000) {
    for (cluster::ServerId id : cluster_.AllServers()) {
      auto server = std::make_unique<CubrickServer>(&sim_, &cluster_,
                                                    &catalog_, id, options_);
      server->SetDirectory(&directory_);
      directory_.Add(server.get());
      servers_.push_back(std::move(server));
    }
  }

  CubrickServer& server(cluster::ServerId id) { return *servers_[id]; }

  // Creates a table and returns its shards.
  std::vector<sm::ShardId> MakeTable(const std::string& name,
                                     uint32_t partitions = 4) {
    TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
    EXPECT_TRUE(catalog_.CreateTable(name, schema, partitions).ok());
    return catalog_.ShardsForTable(name);
  }

  std::vector<Row> MakeRows(size_t n, uint64_t seed = 5) {
    Rng rng(seed);
    return workload::GenerateRows(workload::MakeSchema(2, 64, 8, 1), n, rng);
  }

  CubrickServerOptions options_;
  sim::Simulation sim_;
  cluster::Cluster cluster_;
  Catalog catalog_;
  MapDirectory directory_;
  std::vector<std::unique_ptr<CubrickServer>> servers_;
};

TEST_F(CubrickServerTest, AddShardMaterializesCatalogPartitions) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  EXPECT_TRUE(server(0).OwnsShard(shards[0]));
  EXPECT_TRUE(server(0).HasPartition("t", 0));
  EXPECT_FALSE(server(0).HasPartition("t", 1));
  // Idempotent.
  EXPECT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
}

TEST_F(CubrickServerTest, ShardCollisionRejectedNonRetryably) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  // A different shard carrying another partition of the same table must
  // be refused by this host.
  Status st = server(0).AddShard(shards[1], sm::ShardRole::kPrimary);
  EXPECT_EQ(st.code(), StatusCode::kNonRetryable);
  EXPECT_FALSE(server(0).OwnsShard(shards[1]));
  // A different server takes it happily.
  EXPECT_TRUE(server(1).AddShard(shards[1], sm::ShardRole::kPrimary).ok());
}

TEST_F(CubrickServerTest, PrepareAddShardAlsoChecksCollision) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  EXPECT_EQ(server(0).PrepareAddShard(shards[1], /*from=*/1).code(),
            StatusCode::kNonRetryable);
}

TEST_F(CubrickServerTest, InsertAndExecutePartial) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[2], sm::ShardRole::kPrimary).ok());
  auto rows = MakeRows(100);
  ASSERT_TRUE(server(0).InsertRows("t", 2, rows).ok());
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  auto partial = server(0).ExecutePartial(q, 2);
  ASSERT_TRUE(partial.ok());
  EXPECT_DOUBLE_EQ(*partial->result.Value({}, 0, AggOp::kCount), 100.0);
  EXPECT_EQ(partial->forward_hops, 0);
  EXPECT_EQ(server(0).stats().partial_queries, 1);
}

TEST_F(CubrickServerTest, ExecutePartialUnavailableWhenNotHosted) {
  MakeTable("t");
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  EXPECT_EQ(server(0).ExecutePartial(q, 0).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(CubrickServerTest, InsertRejectedWithoutOwnership) {
  MakeTable("t");
  EXPECT_EQ(server(0).InsertRows("t", 0, MakeRows(1)).code(),
            StatusCode::kUnavailable);
}

TEST_F(CubrickServerTest, GracefulMigrationDataCopyAndForwarding) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[1], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 1, MakeRows(50)).ok());

  // prepareAddShard on the target copies the data from the source.
  ASSERT_TRUE(server(1).PrepareAddShard(shards[1], /*from=*/0).ok());
  EXPECT_TRUE(server(1).HasPartition("t", 1));
  // prepareDropShard on the source turns on forwarding.
  ASSERT_TRUE(server(0).PrepareDropShard(shards[1], /*to=*/1).ok());
  ASSERT_TRUE(server(1).AddShard(shards[1], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).DropShard(shards[1]).ok());

  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  auto direct = server(1).ExecutePartial(q, 1);
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(*direct->result.Value({}, 0, AggOp::kCount), 50.0);
}

TEST_F(CubrickServerTest, ForwardingDuringMigrationWindow) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[1], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 1, MakeRows(50)).ok());
  ASSERT_TRUE(server(1).PrepareAddShard(shards[1], /*from=*/0).ok());
  ASSERT_TRUE(server(0).PrepareDropShard(shards[1], /*to=*/1).ok());
  ASSERT_TRUE(server(1).AddShard(shards[1], sm::ShardRole::kPrimary).ok());
  // Old server has dropped nothing yet but "forwards" once its local data
  // is gone; simulate the post-drop window:
  ASSERT_TRUE(server(0).DropShard(shards[1]).ok());
  ASSERT_TRUE(server(0).PrepareDropShard(shards[1], 1).code() ==
              StatusCode::kFailedPrecondition);
  // Re-arm forwarding manually is not possible after drop; instead test
  // the pre-drop forward path: a server that staged away its data.
  // Simpler: stale clients hitting server 2 (never hosted) get
  // UNAVAILABLE, the proxy's retry signal.
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  EXPECT_EQ(server(2).ExecutePartial(q, 1).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(CubrickServerTest, InsertFollowsForwarding) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[1], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(1).PrepareAddShard(shards[1], /*from=*/0).ok());
  ASSERT_TRUE(server(0).PrepareDropShard(shards[1], /*to=*/1).ok());
  // Writes arriving at the old owner during the window reach the target.
  ASSERT_TRUE(server(0).InsertRows("t", 1, MakeRows(10)).ok());
  EXPECT_GT(server(0).stats().forwarded_requests, 0);
  ASSERT_TRUE(server(1).AddShard(shards[1], sm::ShardRole::kPrimary).ok());
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  auto partial = server(1).ExecutePartial(q, 1);
  ASSERT_TRUE(partial.ok());
  EXPECT_DOUBLE_EQ(*partial->result.Value({}, 0, AggOp::kCount), 10.0);
}

TEST_F(CubrickServerTest, FailoverRecoversFromAnotherRegion) {
  auto shards = MakeTable("t");
  // Server 0 (region 0) has the data; server 3 (region 1) recovers it.
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(30)).ok());
  server(3).SetRecoverySource(
      [this](const std::string& table, uint32_t partition) {
        return server(0).HasPartition(table, partition) ? &server(0)
                                                        : nullptr;
      });
  ASSERT_TRUE(server(3).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  EXPECT_EQ(server(3).stats().recoveries, 1);
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  auto partial = server(3).ExecutePartial(q, 0);
  ASSERT_TRUE(partial.ok());
  EXPECT_DOUBLE_EQ(*partial->result.Value({}, 0, AggOp::kCount), 30.0);
}

TEST_F(CubrickServerTest, DropShardRemovesDataAndMetadata) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(10)).ok());
  ASSERT_TRUE(server(0).DropShard(shards[0]).ok());
  EXPECT_FALSE(server(0).OwnsShard(shards[0]));
  EXPECT_FALSE(server(0).HasPartition("t", 0));
  EXPECT_EQ(server(0).DropShard(shards[0]).code(), StatusCode::kNotFound);
  // After dropping, the same table's other partitions are placeable here.
  EXPECT_TRUE(server(0).AddShard(shards[1], sm::ShardRole::kPrimary).ok());
}

TEST_F(CubrickServerTest, MetricGenerationsExport) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(2000)).ok());

  double footprint = server(0).ShardLoad(shards[0], "memory_footprint");
  double logical = server(0).ShardLoad(shards[0], "decompressed_size");
  EXPECT_GT(footprint, 0);
  EXPECT_DOUBLE_EQ(footprint, logical);  // nothing compressed yet
  EXPECT_DOUBLE_EQ(server(0).ShardLoad(shards[0], "ssd_footprint"), 0.0);
  EXPECT_DOUBLE_EQ(server(0).ShardLoad(shards[0], "bogus_metric"), 0.0);

  // Capacities: gen1 = 0.9*mem; gen2 = gen1 * avg ratio; gen3 = ssd.
  double mem = static_cast<double>(cluster_.Get(0).memory_bytes);
  EXPECT_DOUBLE_EQ(server(0).Capacity("memory_footprint"), 0.9 * mem);
  EXPECT_DOUBLE_EQ(server(0).Capacity("decompressed_size"),
                   0.9 * mem * options_.avg_compression_ratio);
  EXPECT_DOUBLE_EQ(server(0).Capacity("ssd_footprint"),
                   static_cast<double>(cluster_.Get(0).ssd_bytes));
}

TEST_F(CubrickServerTest, MemoryMonitorCompressesUnderPressure) {
  // 1 MiB host memory; load enough rows to cross the 90% watermark.
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  size_t target_bytes = (1 << 20);
  size_t row_bytes = 2 * sizeof(uint32_t) + sizeof(double);
  size_t rows_needed = target_bytes / row_bytes + 1000;
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(rows_needed)).ok());
  size_t before = server(0).MemoryUsage();
  ASSERT_GT(before, static_cast<size_t>(0.9 * (1 << 20)));

  server(0).RunMemoryMonitor();
  EXPECT_GT(server(0).stats().bricks_compressed, 0);
  EXPECT_LT(server(0).MemoryUsage(), before);
  // Generation 2 invariant: the decompressed size is unchanged by
  // compression (the whole point of the deterministic metric).
  EXPECT_DOUBLE_EQ(
      server(0).ShardLoad(shards[0], "decompressed_size"),
      static_cast<double>(rows_needed) * row_bytes);
  // Footprint is now genuinely below the logical size.
  EXPECT_LT(server(0).ShardLoad(shards[0], "memory_footprint"),
            server(0).ShardLoad(shards[0], "decompressed_size"));
}

TEST_F(CubrickServerTest, MemoryMonitorDecompressesOnSurplus) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(3000)).ok());
  // Compress everything by hand.
  for (auto& [ref, partition] : server(0).partitions()) {
    for (Brick* b :
         const_cast<TablePartition&>(partition).BricksByHotness(true)) {
      b->Compress();
    }
  }
  size_t compressed = server(0).MemoryUsage();
  // Usage far below the low watermark: the monitor decompresses.
  server(0).RunMemoryMonitor();
  EXPECT_GT(server(0).stats().bricks_decompressed, 0);
  EXPECT_GT(server(0).MemoryUsage(), compressed);
}

TEST_F(CubrickServerTest, Gen3EvictsToSsdWhenCompressionInsufficient) {
  CubrickServerOptions gen3;
  gen3.enable_ssd_eviction = true;
  CubrickServer ssd_server(&sim_, &cluster_, &catalog_, 2, gen3);
  ssd_server.SetDirectory(&directory_);
  auto shards = MakeTable("t");
  ASSERT_TRUE(ssd_server.AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  // Overfill badly: even compressed (~2-3x) stays above the watermark.
  size_t row_bytes = 2 * sizeof(uint32_t) + sizeof(double);
  size_t rows_needed = 4 * (1 << 20) / row_bytes;
  ASSERT_TRUE(ssd_server.InsertRows("t", 0, MakeRows(rows_needed)).ok());
  ssd_server.RunMemoryMonitor();
  EXPECT_GT(ssd_server.stats().bricks_evicted, 0);
  EXPECT_GT(ssd_server.ShardLoad(shards[0], "ssd_footprint"), 0.0);
  EXPECT_LE(ssd_server.MemoryUsage(),
            static_cast<size_t>(0.91 * (1 << 20)));
}

TEST_F(CubrickServerTest, HotnessDecayRuns) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(500)).ok());
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  for (int i = 0; i < 4; ++i) server(0).ExecutePartial(q, 0);
  uint32_t before = 0;
  for (const auto& [ref, partition] : server(0).partitions()) {
    for (const auto& [id, brick] : partition.bricks()) {
      before += brick.hotness();
    }
  }
  for (int i = 0; i < 6; ++i) server(0).RunHotnessDecay();
  uint32_t after = 0;
  for (const auto& [ref, partition] : server(0).partitions()) {
    for (const auto& [id, brick] : partition.bricks()) {
      after += brick.hotness();
    }
  }
  EXPECT_LT(after, before);
}

TEST_F(CubrickServerTest, ResetClearsEverything) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(10)).ok());
  server(0).Reset();
  EXPECT_EQ(server(0).num_partitions_hosted(), 0u);
  EXPECT_FALSE(server(0).OwnsShard(shards[0]));
  EXPECT_EQ(server(0).MemoryUsage(), 0u);
}

TEST_F(CubrickServerTest, ExportPartitionAndDropTableData) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(25)).ok());
  auto rows = server(0).ExportPartition("t", 0);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 25u);
  EXPECT_FALSE(server(0).ExportPartition("t", 1).ok());
  server(0).DropTableData("t");
  EXPECT_FALSE(server(0).HasPartition("t", 0));
}

// --- morsel-parallel execution (scalewall::exec integration) ---

// Key + finalized-value equality between two materialized result sets.
bool SameRows(const std::vector<ResultRow>& a,
              const std::vector<ResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].values != b[i].values) return false;
  }
  return true;
}

TEST_F(CubrickServerTest, ParallelScanMatchesSerialAndExportsScanMicros) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(2000)).ok());

  // A second host with a 4-worker pool and tiny morsels, loaded with the
  // same rows.
  CubrickServerOptions popts = options_;
  popts.scan_workers = 4;
  popts.morsel_rows = 64;
  CubrickServer parallel(&sim_, &cluster_, &catalog_, /*server=*/5, popts);
  ASSERT_NE(parallel.exec_pool(), nullptr);
  EXPECT_EQ(parallel.exec_pool()->num_threads(), 4);
  ASSERT_TRUE(parallel.AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(parallel.InsertRows("t", 0, MakeRows(2000)).ok());

  Query q;
  q.table = "t";
  q.group_by = {0};
  q.aggregations = {Aggregation{0, AggOp::kSum},
                    Aggregation{0, AggOp::kCount}};
  auto serial = server(0).ExecutePartial(q, 0);
  auto par = parallel.ExecutePartial(q, 0);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_TRUE(SameRows(MaterializeRows(serial->result, q),
                       MaterializeRows(par->result, q)));
  EXPECT_EQ(par->result.rows_scanned, serial->result.rows_scanned);

  // The parallel host counted the scan and exports its measured time.
  EXPECT_EQ(parallel.stats().parallel_scans.load(), 1);
  EXPECT_EQ(server(0).stats().parallel_scans.load(), 0);
  EXPECT_GE(parallel.stats().scan_micros.load(), 0);
  EXPECT_GE(parallel.ShardLoad(shards[0], "scan_micros"), 0.0);
}

TEST_F(CubrickServerTest, ExecutePartialCancelledByToken) {
  auto shards = MakeTable("t");
  CubrickServerOptions popts = options_;
  popts.scan_workers = 4;
  CubrickServer parallel(&sim_, &cluster_, &catalog_, /*server=*/5, popts);
  ASSERT_TRUE(parallel.AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(parallel.InsertRows("t", 0, MakeRows(500)).ok());

  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  exec::CancelToken cancel;
  cancel.RequestCancel();  // deadline budget already spent
  auto partial = parallel.ExecutePartial(q, 0, /*hop_budget=*/-1, &cancel);
  EXPECT_EQ(partial.status().code(), StatusCode::kCancelled);
}

TEST_F(CubrickServerTest, ExecutePartialManyFansPartitionsAcrossPool) {
  // Under naive-hash mapping two partitions of one table can land in
  // the same shard — and a host may legally own both (same shard, so no
  // collision). That is the multi-partition fan-out case
  // ExecutePartialMany parallelizes. (The fixture catalog's
  // kHashPartitionZero strategy spreads partitions over distinct shards
  // by construction, so this test builds its own naive-hash catalog.)
  Catalog hash_catalog(100, ShardMappingStrategy::kNaiveHash);
  TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(hash_catalog.CreateTable("many", schema, 100).ok());
  std::vector<sm::ShardId> shards = hash_catalog.ShardsForTable("many");
  std::set<sm::ShardId> distinct(shards.begin(), shards.end());
  std::vector<uint32_t> parts;
  sm::ShardId multi = 0;
  for (sm::ShardId s : distinct) {
    std::vector<uint32_t> here;
    for (const PartitionRef& ref : hash_catalog.PartitionsForShard(s)) {
      if (ref.table == "many") here.push_back(ref.partition);
    }
    if (here.size() >= 2) {
      multi = s;
      parts = here;
      break;
    }
  }
  if (parts.empty()) GTEST_SKIP() << "no shard drew two partitions";

  CubrickServerOptions popts = options_;
  popts.scan_workers = 4;
  popts.morsel_rows = 128;
  CubrickServer host(&sim_, &cluster_, &hash_catalog, /*server=*/5, popts);
  ASSERT_TRUE(host.AddShard(multi, sm::ShardRole::kPrimary).ok());
  for (size_t i = 0; i < parts.size(); ++i) {
    ASSERT_TRUE(
        host.InsertRows("many", parts[i], MakeRows(300, /*seed=*/40 + i))
            .ok());
  }

  Query q;
  q.table = "many";
  q.group_by = {1};
  q.aggregations = {Aggregation{0, AggOp::kSum},
                    Aggregation{0, AggOp::kCount}};
  auto many = host.ExecutePartialMany(q, parts);
  ASSERT_TRUE(many.ok());
  ASSERT_EQ(many->size(), parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    auto single = host.ExecutePartial(q, parts[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_TRUE(SameRows(MaterializeRows(single->result, q),
                         MaterializeRows((*many)[i].result, q)))
        << "partition " << parts[i];
  }
}

TEST_F(CubrickServerTest, ExecutePartialManySerialFallbackWithoutPool) {
  auto shards = MakeTable("t");
  ASSERT_TRUE(server(0).AddShard(shards[0], sm::ShardRole::kPrimary).ok());
  ASSERT_TRUE(server(0).InsertRows("t", 0, MakeRows(100)).ok());
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  ASSERT_EQ(server(0).exec_pool(), nullptr);
  auto many = server(0).ExecutePartialMany(q, {0});
  ASSERT_TRUE(many.ok());
  ASSERT_EQ(many->size(), 1u);
  EXPECT_EQ((*many)[0].result.rows_scanned, 100);
}

}  // namespace
}  // namespace scalewall::cubrick
