// Unit tests for the SQL front-end, dictionary encoding, and IN-filter
// execution/pruning.

#include <gtest/gtest.h>

#include "cubrick/dictionary.h"
#include "cubrick/partition.h"
#include "cubrick/sql.h"
#include "workload/generators.h"

namespace scalewall::cubrick {
namespace {

TableSchema AdSchema() { return workload::AdEventsSchema(); }

TEST(SqlParserTest, MinimalQuery) {
  auto q = ParseQuery("SELECT SUM(spend) FROM ad_events", AdSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->table, "ad_events");
  ASSERT_EQ(q->aggregations.size(), 1u);
  EXPECT_EQ(q->aggregations[0].op, AggOp::kSum);
  EXPECT_EQ(q->aggregations[0].metric, 2);  // spend
  EXPECT_TRUE(q->filters.empty());
  EXPECT_TRUE(q->group_by.empty());
}

TEST(SqlParserTest, FullQuery) {
  auto q = ParseQuery(
      "SELECT platform, SUM(spend), COUNT(*) FROM ad_events "
      "WHERE day BETWEEN 335 AND 364 AND country = 7 AND platform IN (0, 2) "
      "GROUP BY platform",
      AdSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->aggregations.size(), 2u);
  EXPECT_EQ(q->aggregations[1].op, AggOp::kCount);
  ASSERT_EQ(q->filters.size(), 2u);
  EXPECT_EQ(q->filters[0].dimension, 0);
  EXPECT_EQ(q->filters[0].lo, 335u);
  EXPECT_EQ(q->filters[0].hi, 364u);
  EXPECT_EQ(q->filters[1].lo, 7u);
  EXPECT_EQ(q->filters[1].hi, 7u);
  ASSERT_EQ(q->in_filters.size(), 1u);
  EXPECT_EQ(q->in_filters[0].dimension, 2);
  EXPECT_EQ(q->in_filters[0].values, (std::vector<uint32_t>{0, 2}));
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0], 2);
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery(
      "select sum(spend) from t where day >= 100 group by platform",
      AdSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->filters[0].lo, 100u);
}

TEST(SqlParserTest, ComparisonOperators) {
  TableSchema schema = AdSchema();
  struct Case {
    const char* sql;
    uint32_t lo, hi;
  };
  // day has cardinality 365, so open upper bounds clamp to 364.
  for (const Case& c : std::initializer_list<Case>{
           {"SELECT SUM(spend) FROM t WHERE day = 5", 5, 5},
           {"SELECT SUM(spend) FROM t WHERE day < 5", 0, 4},
           {"SELECT SUM(spend) FROM t WHERE day <= 5", 0, 5},
           {"SELECT SUM(spend) FROM t WHERE day > 5", 6, 364},
           {"SELECT SUM(spend) FROM t WHERE day >= 5", 5, 364}}) {
    auto q = ParseQuery(c.sql, schema);
    ASSERT_TRUE(q.ok()) << c.sql << ": " << q.status();
    EXPECT_EQ(q->filters[0].lo, c.lo) << c.sql;
    EXPECT_EQ(q->filters[0].hi, c.hi) << c.sql;
  }
}

TEST(SqlParserTest, AllAggregates) {
  auto q = ParseQuery(
      "SELECT SUM(spend), MIN(clicks), MAX(clicks), AVG(impressions), "
      "COUNT(*) FROM t",
      AdSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->aggregations.size(), 5u);
  EXPECT_EQ(q->aggregations[0].op, AggOp::kSum);
  EXPECT_EQ(q->aggregations[1].op, AggOp::kMin);
  EXPECT_EQ(q->aggregations[2].op, AggOp::kMax);
  EXPECT_EQ(q->aggregations[3].op, AggOp::kAvg);
  EXPECT_EQ(q->aggregations[4].op, AggOp::kCount);
}

TEST(SqlParserTest, Errors) {
  TableSchema schema = AdSchema();
  // Each case must fail with INVALID_ARGUMENT.
  for (const char* sql : {
           "SUM(spend) FROM t",                           // missing SELECT
           "SELECT FROM t",                               // empty list
           "SELECT SUM(spend)",                           // missing FROM
           "SELECT SUM(nope) FROM t",                     // unknown metric
           "SELECT SUM(spend) FROM t WHERE nope = 1",     // unknown dim
           "SELECT SUM(spend) FROM t WHERE day ! 1",      // bad char
           "SELECT SUM(spend) FROM t WHERE day BETWEEN 1",// bad BETWEEN
           "SELECT SUM(spend) FROM t WHERE day IN ()",    // empty IN
           "SELECT SUM(spend) FROM t WHERE day < 0",      // empty range
           "SELECT SUM(*) FROM t",                        // * not COUNT
           "SELECT day, SUM(spend) FROM t",               // no GROUP BY
           "SELECT day FROM t",                           // no aggregate
           "SELECT SUM(spend) FROM t trailing",           // trailing junk
           "SELECT SUM(spend) FROM t WHERE day = 99999999999",  // overflow
       }) {
    auto q = ParseQuery(sql, schema);
    EXPECT_FALSE(q.ok()) << sql;
  }
}

TEST(SqlParserTest, ParsedQueryExecutes) {
  TableSchema schema = AdSchema();
  TablePartition part("ad_events", 0, schema);
  // day, country, platform, campaign; impressions, clicks, spend
  part.Insert(Row{{100, 1, 0, 10}, {10, 1, 5.0}});
  part.Insert(Row{{200, 1, 1, 10}, {20, 2, 7.0}});
  part.Insert(Row{{300, 1, 0, 10}, {30, 3, 9.0}});
  auto q = ParseQuery(
      "SELECT SUM(spend), COUNT(*) FROM ad_events WHERE day >= 150",
      schema);
  ASSERT_TRUE(q.ok());
  QueryResult result(2);
  ASSERT_TRUE(part.Execute(*q, result).ok());
  EXPECT_DOUBLE_EQ(*result.Value({}, 0, AggOp::kSum), 16.0);
  EXPECT_DOUBLE_EQ(*result.Value({}, 1, AggOp::kCount), 2.0);
}

TEST(SqlFormatterTest, RoundtripThroughParser) {
  TableSchema schema = AdSchema();
  auto q = ParseQuery(
      "SELECT platform, SUM(spend), COUNT(*) FROM ad_events "
      "WHERE day BETWEEN 335 AND 364 AND platform IN (0, 2) "
      "GROUP BY platform",
      schema);
  ASSERT_TRUE(q.ok());
  std::string sql = FormatQuery(*q, schema);
  auto q2 = ParseQuery(sql, schema);
  ASSERT_TRUE(q2.ok()) << sql << " -> " << q2.status();
  EXPECT_EQ(q2->filters.size(), q->filters.size());
  EXPECT_EQ(q2->in_filters.size(), q->in_filters.size());
  EXPECT_EQ(q2->group_by, q->group_by);
  EXPECT_EQ(q2->aggregations.size(), q->aggregations.size());
}

TEST(SqlFormatterTest, EqualityRendersAsEquals) {
  TableSchema schema = AdSchema();
  auto q = ParseQuery("SELECT SUM(spend) FROM t WHERE country = 9", schema);
  ASSERT_TRUE(q.ok());
  EXPECT_NE(FormatQuery(*q, schema).find("country = 9"), std::string::npos);
}

// --- ORDER BY / LIMIT ---

TEST(SqlParserTest, OrderByAndLimit) {
  auto q = ParseQuery(
      "SELECT platform, SUM(spend), COUNT(*) FROM t GROUP BY platform "
      "ORDER BY SUM(spend) DESC LIMIT 3",
      AdSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->order_by, 0);
  EXPECT_TRUE(q->descending);
  EXPECT_EQ(q->limit, 3u);

  auto asc = ParseQuery(
      "SELECT SUM(spend) FROM t ORDER BY SUM(spend) ASC", AdSchema());
  ASSERT_TRUE(asc.ok());
  EXPECT_FALSE(asc->descending);

  auto implicit = ParseQuery(
      "SELECT SUM(spend) FROM t ORDER BY SUM(spend)", AdSchema());
  ASSERT_TRUE(implicit.ok());
  EXPECT_FALSE(implicit->descending);  // SQL default: ascending

  auto count_star = ParseQuery(
      "SELECT platform, COUNT(*) FROM t GROUP BY platform "
      "ORDER BY COUNT(*) DESC LIMIT 1",
      AdSchema());
  ASSERT_TRUE(count_star.ok());
  EXPECT_EQ(count_star->order_by, 0);
}

TEST(SqlParserTest, OrderByErrors) {
  // Not in the SELECT list.
  EXPECT_FALSE(ParseQuery("SELECT SUM(spend) FROM t ORDER BY MAX(spend)",
                          AdSchema())
                   .ok());
  // Not an aggregate.
  EXPECT_FALSE(
      ParseQuery("SELECT SUM(spend) FROM t ORDER BY day", AdSchema()).ok());
  // Zero limit.
  EXPECT_FALSE(
      ParseQuery("SELECT SUM(spend) FROM t LIMIT 0", AdSchema()).ok());
}

TEST(MaterializeRowsTest, TopNOrdering) {
  TableSchema schema = workload::MakeSchema(1, 16, 4, 1);
  TablePartition part("t", 0, schema);
  // value v appears v+1 times with metric v.
  for (uint32_t v = 0; v < 8; ++v) {
    for (uint32_t i = 0; i <= v; ++i) {
      part.Insert(Row{{v}, {static_cast<double>(v)}});
    }
  }
  Query q;
  q.table = "t";
  q.group_by = {0};
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  q.order_by = 0;
  q.descending = true;
  q.limit = 3;
  QueryResult result(1);
  ASSERT_TRUE(part.Execute(q, result).ok());
  auto rows = MaterializeRows(result, q);
  ASSERT_EQ(rows.size(), 3u);
  // SUM for value v is v*(v+1): 56, 42, 30 for v = 7, 6, 5.
  EXPECT_EQ(rows[0].key[0], 7u);
  EXPECT_DOUBLE_EQ(rows[0].values[0], 56.0);
  EXPECT_EQ(rows[1].key[0], 6u);
  EXPECT_EQ(rows[2].key[0], 5u);
}

TEST(MaterializeRowsTest, AscendingAndUnordered) {
  Query q;
  q.table = "t";
  q.group_by = {0};
  q.aggregations = {Aggregation{0, AggOp::kSum}};
  QueryResult result(1);
  result.Accumulate({2}, 0, 5.0);
  result.Accumulate({1}, 0, 9.0);
  result.Accumulate({3}, 0, 1.0);
  // No ORDER BY: group-key order (std::map order).
  auto rows = MaterializeRows(result, q);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key[0], 1u);
  // Ascending by aggregate.
  q.order_by = 0;
  q.descending = false;
  rows = MaterializeRows(result, q);
  EXPECT_DOUBLE_EQ(rows[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(rows[2].values[0], 9.0);
}

TEST(SqlFormatterTest, OrderByLimitRoundtrip) {
  TableSchema schema = AdSchema();
  auto q = ParseQuery(
      "SELECT platform, SUM(spend) FROM t GROUP BY platform "
      "ORDER BY SUM(spend) DESC LIMIT 5",
      schema);
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(FormatQuery(*q, schema), schema);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->order_by, q->order_by);
  EXPECT_EQ(q2->descending, q->descending);
  EXPECT_EQ(q2->limit, q->limit);
}

// --- IN filter execution ---

TEST(InFilterTest, ExecutionMatchesMembership) {
  TableSchema schema = workload::MakeSchema(1, 64, 8, 1);
  TablePartition part("t", 0, schema);
  for (uint32_t v = 0; v < 64; ++v) {
    part.Insert(Row{{v}, {1.0}});
  }
  Query q;
  q.table = "t";
  q.in_filters = {FilterIn{0, {3, 17, 45, 63}}};
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  QueryResult result(1);
  ASSERT_TRUE(part.Execute(q, result).ok());
  EXPECT_DOUBLE_EQ(*result.Value({}, 0, AggOp::kCount), 4.0);
}

TEST(InFilterTest, PruningSkipsBricksWithoutValues) {
  TableSchema schema = workload::MakeSchema(1, 64, 8, 1);  // 8 bricks
  TablePartition part("t", 0, schema);
  for (uint32_t v = 0; v < 64; ++v) part.Insert(Row{{v}, {1.0}});
  Query q;
  q.table = "t";
  q.in_filters = {FilterIn{0, {3, 5}}};  // both in brick 0
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  QueryResult result(1);
  ASSERT_TRUE(part.Execute(q, result).ok());
  EXPECT_EQ(result.bricks_scanned, 1);
  EXPECT_EQ(result.bricks_pruned, 7);
  EXPECT_DOUBLE_EQ(*result.Value({}, 0, AggOp::kCount), 2.0);
}

TEST(InFilterTest, ValidationErrors) {
  TableSchema schema = workload::MakeSchema(1, 64, 8, 1);
  Query q;
  q.table = "t";
  q.aggregations = {Aggregation{0, AggOp::kCount}};
  q.in_filters = {FilterIn{5, {1}}};
  EXPECT_FALSE(q.Validate(schema).ok());
  q.in_filters = {FilterIn{0, {}}};
  EXPECT_FALSE(q.Validate(schema).ok());
}

// --- dictionary ---

TEST(DictionaryTest, EncodeAssignsDenseCodes) {
  Dictionary dict(4);
  EXPECT_EQ(*dict.Encode("US"), 0u);
  EXPECT_EQ(*dict.Encode("BR"), 1u);
  EXPECT_EQ(*dict.Encode("US"), 0u);  // stable
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(*dict.Decode(1), "BR");
  EXPECT_EQ(*dict.Lookup("BR"), 1u);
  EXPECT_EQ(dict.Lookup("JP").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dict.Decode(9).status().code(), StatusCode::kNotFound);
}

TEST(DictionaryTest, CapacityEnforced) {
  Dictionary dict(2);
  ASSERT_TRUE(dict.Encode("a").ok());
  ASSERT_TRUE(dict.Encode("b").ok());
  EXPECT_EQ(dict.Encode("c").status().code(),
            StatusCode::kResourceExhausted);
  // Existing values still encode fine.
  EXPECT_EQ(*dict.Encode("a"), 0u);
}

TEST(DictionaryEncoderTest, RowRoundtrip) {
  TableSchema schema = AdSchema();
  DictionaryEncoder encoder(schema);
  auto row = encoder.EncodeRow({"2021-03-01", "US", "ios", "campaign_7"},
                               {100.0, 3.0, 1.25});
  ASSERT_TRUE(row.ok()) << row.status();
  EXPECT_EQ(row->dims.size(), 4u);
  EXPECT_EQ(row->metrics[2], 1.25);
  auto decoded = encoder.DecodeDims(*row);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[1], "US");
  EXPECT_EQ((*decoded)[2], "ios");
}

TEST(DictionaryEncoderTest, ArityChecked) {
  DictionaryEncoder encoder(AdSchema());
  EXPECT_FALSE(encoder.EncodeRow({"a", "b"}, {1, 2, 3}).ok());
  EXPECT_FALSE(encoder.EncodeRow({"a", "b", "c", "d"}, {1}).ok());
}

TEST(DictionaryEncoderTest, EncodedRowsQueryable) {
  TableSchema schema = AdSchema();
  DictionaryEncoder encoder(schema);
  TablePartition part("ad_events", 0, schema);
  const char* countries[] = {"US", "BR", "US", "JP", "US"};
  for (int i = 0; i < 5; ++i) {
    auto row = encoder.EncodeRow(
        {"day0", countries[i], "ios", "c1"}, {1.0, 0.0, 2.0});
    ASSERT_TRUE(row.ok());
    ASSERT_TRUE(part.Insert(*row).ok());
  }
  // Filter country = 'US' via the dictionary.
  Query q;
  q.table = "ad_events";
  uint32_t us = *encoder.dictionary(1).Lookup("US");
  q.filters = {FilterRange{1, us, us}};
  q.aggregations = {Aggregation{2, AggOp::kSum}};
  QueryResult result(1);
  ASSERT_TRUE(part.Execute(q, result).ok());
  EXPECT_DOUBLE_EQ(*result.Value({}, 0, AggOp::kSum), 6.0);
}

}  // namespace
}  // namespace scalewall::cubrick
