// Differential tests for the vectorized brick-scan path (ISSUE 6): the
// vectorized kernels must produce *byte-identical* results to the
// interpreted row-at-a-time oracle on randomized queries — serial and
// morsel-parallel, uncompressed and compressed, with and without joins —
// plus regression tests for the satellite fixes that rode along
// (NaN-safe ORDER BY, zero-count min/max finalization, fingerprint
// canonicalization, brick-id-space overflow rejection, RLE scan
// skipping).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "cubrick/partition.h"
#include "cubrick/query.h"
#include "cubrick/replicated_table.h"
#include "cubrick/schema.h"
#include "exec/morsel.h"
#include "exec/thread_pool.h"
#include "workload/generators.h"

namespace scalewall::cubrick {
namespace {

// memcmp on the raw doubles (sensitive to -0.0 vs +0.0), except that any
// NaN equals any NaN: when both addends of `sum += v` are NaN, which
// payload/sign x86 propagates depends on operand order the compiler
// happened to pick, so NaN bits can differ between two correct builds of
// the same addition sequence. Everything non-NaN is bit-exact.
bool SameDouble(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult BitIdentical(const QueryResult& a,
                                        const QueryResult& b) {
  if (a.rows_scanned != b.rows_scanned) {
    return ::testing::AssertionFailure()
           << "rows_scanned " << a.rows_scanned << " vs " << b.rows_scanned;
  }
  if (a.bricks_scanned != b.bricks_scanned) {
    return ::testing::AssertionFailure() << "bricks_scanned "
                                         << a.bricks_scanned << " vs "
                                         << b.bricks_scanned;
  }
  if (a.bricks_pruned != b.bricks_pruned) {
    return ::testing::AssertionFailure()
           << "bricks_pruned " << a.bricks_pruned << " vs "
           << b.bricks_pruned;
  }
  if (a.num_groups() != b.num_groups()) {
    return ::testing::AssertionFailure()
           << "num_groups " << a.num_groups() << " vs " << b.num_groups();
  }
  auto ia = a.groups().begin();
  auto ib = b.groups().begin();
  for (; ia != a.groups().end(); ++ia, ++ib) {
    if (ia->first != ib->first) {
      return ::testing::AssertionFailure() << "group keys diverge";
    }
    if (ia->second.size() != ib->second.size()) {
      return ::testing::AssertionFailure() << "agg arity diverges";
    }
    for (size_t i = 0; i < ia->second.size(); ++i) {
      const AggState& sa = ia->second[i];
      const AggState& sb = ib->second[i];
      if (!SameDouble(sa.sum, sb.sum) || sa.count != sb.count ||
          !SameDouble(sa.min, sb.min) || !SameDouble(sa.max, sb.max)) {
        return ::testing::AssertionFailure()
               << "agg state " << i << " diverges: sum " << sa.sum << "/"
               << sb.sum << " count " << sa.count << "/" << sb.count
               << " min " << sa.min << "/" << sb.min << " max " << sa.max
               << "/" << sb.max;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TablePartition MakeLoadedPartition(const TableSchema& schema, size_t rows,
                                   uint64_t seed) {
  TablePartition part("t", 0, schema);
  Rng rng(seed);
  for (const Row& row : workload::GenerateRows(schema, rows, rng)) {
    EXPECT_TRUE(part.Insert(row).ok());
  }
  return part;
}

// A dimension table covering only part of the key domain, so inner-join
// drops are exercised (plus a second attribute for multi-join queries).
ReplicatedTable MakeDimTable(const std::string& name, uint32_t key_card,
                             uint64_t seed) {
  ReplicatedTable dim(name, key_card,
                      {{"color", 8, 1}, {"size", 5, 1}});
  Rng rng(seed);
  for (uint32_t key = 0; key < key_card; ++key) {
    if (rng.NextBool(0.3)) continue;  // ~30% of keys left unmatched
    DimensionEntry entry;
    entry.key = key;
    entry.attributes = {static_cast<uint32_t>(rng.NextBounded(8)),
                        static_cast<uint32_t>(rng.NextBounded(5))};
    EXPECT_TRUE(dim.Set(entry).ok());
  }
  return dim;
}

// Richer query generator than workload::GenerateQuery: IN lists (with
// out-of-domain values), multiple group dimensions, joins with attribute
// filters and grouped attributes, and every aggregation op.
Query RandomQuery(const TableSchema& schema, Rng& rng, bool with_join) {
  Query q;
  q.table = "t";
  const int dims = static_cast<int>(schema.dimensions.size());
  for (int d = 0; d < dims; ++d) {
    if (rng.NextBool(0.4)) {
      const uint32_t card = schema.dimensions[d].cardinality;
      uint32_t lo = static_cast<uint32_t>(rng.NextBounded(card));
      uint32_t hi = static_cast<uint32_t>(rng.NextBounded(card));
      if (lo > hi) std::swap(lo, hi);
      q.filters.push_back({d, lo, hi});
    }
    if (rng.NextBool(0.25)) {
      FilterIn in;
      in.dimension = d;
      const size_t n = 1 + rng.NextBounded(5);
      for (size_t i = 0; i < n; ++i) {
        // Occasionally out of the dimension's domain: can never match.
        const uint32_t span = schema.dimensions[d].cardinality + 4;
        in.values.push_back(static_cast<uint32_t>(rng.NextBounded(span)));
      }
      q.in_filters.push_back(in);
    }
  }
  for (int d = 0; d < dims; ++d) {
    if (rng.NextBool(0.3)) q.group_by.push_back(d);
    if (q.group_by.size() >= 2) break;
  }
  if (with_join) {
    // Join dim 0 against "colors"; sometimes a second join on dim 1.
    q.joins.push_back({0, "colors", 0});
    if (rng.NextBool(0.5)) q.joins.push_back({1, "colors", 1});
    for (size_t j = 0; j < q.joins.size(); ++j) {
      if (rng.NextBool(0.5)) {
        q.join_filters.push_back(
            {static_cast<int>(j), 0,
             static_cast<uint32_t>(1 + rng.NextBounded(6))});
      }
      if (rng.NextBool(0.5)) {
        q.group_by_joins.push_back(static_cast<int>(j));
      }
    }
  }
  const size_t naggs = 1 + rng.NextBounded(3);
  const AggOp ops[] = {AggOp::kSum, AggOp::kCount, AggOp::kMin, AggOp::kMax,
                       AggOp::kAvg};
  for (size_t i = 0; i < naggs; ++i) {
    Aggregation a;
    a.metric = static_cast<int>(
        rng.NextBounded(schema.metrics.empty() ? 1 : schema.metrics.size()));
    a.op = ops[rng.NextBounded(5)];
    q.aggregations.push_back(a);
  }
  return q;
}

// Runs `query` through both scan paths (serial unless `opts` given) and
// checks byte identity.
void ExpectPathsAgree(TablePartition& part, const Query& query,
                      const JoinContext* join,
                      exec::ExecOptions* opts = nullptr) {
  ASSERT_TRUE(query.Validate(part.schema()).ok());
  QueryResult vec(query.aggregations.size());
  QueryResult oracle(query.aggregations.size());
  exec::ExecOptions vec_opts = opts ? *opts : exec::ExecOptions{};
  vec_opts.scan_path = exec::ScanPath::kVectorized;
  exec::ExecOptions int_opts = opts ? *opts : exec::ExecOptions{};
  int_opts.scan_path = exec::ScanPath::kInterpreted;
  ASSERT_TRUE(part.Execute(query, vec, join, &vec_opts).ok());
  ASSERT_TRUE(part.Execute(query, oracle, join, &int_opts).ok());
  EXPECT_TRUE(BitIdentical(vec, oracle)) << CanonicalQueryFingerprint(query);
}

TEST(VecDifferentialTest, RandomQueriesSerial) {
  const TableSchema schema = workload::MakeSchema(3, 64, 16, 2);
  TablePartition part = MakeLoadedPartition(schema, 6000, 1);
  Rng rng(42);
  for (int i = 0; i < 60; ++i) {
    ExpectPathsAgree(part, RandomQuery(schema, rng, false), nullptr);
  }
}

TEST(VecDifferentialTest, RandomQueriesParallel) {
  const TableSchema schema = workload::MakeSchema(3, 64, 16, 2);
  TablePartition part = MakeLoadedPartition(schema, 6000, 2);
  exec::ThreadPool pool(8);
  exec::ExecOptions opts;
  opts.num_workers = 8;
  opts.pool = &pool;
  opts.morsel_rows = 256;  // many morsels per brick
  Rng rng(43);
  for (int i = 0; i < 40; ++i) {
    ExpectPathsAgree(part, RandomQuery(schema, rng, false), nullptr, &opts);
  }
}

TEST(VecDifferentialTest, RandomQueriesWithJoins) {
  const TableSchema schema = workload::MakeSchema(3, 64, 16, 2);
  TablePartition part = MakeLoadedPartition(schema, 6000, 3);
  const ReplicatedTable dim = MakeDimTable("colors", 64, 7);
  Rng rng(44);
  for (int i = 0; i < 40; ++i) {
    const Query q = RandomQuery(schema, rng, true);
    JoinContext join;
    join.tables.assign(q.joins.size(), &dim);
    ExpectPathsAgree(part, q, &join);
  }
}

TEST(VecDifferentialTest, RandomQueriesCompressed) {
  const TableSchema schema = workload::MakeSchema(3, 64, 16, 2);
  TablePartition part = MakeLoadedPartition(schema, 6000, 4);
  for (auto& [id, brick] : part.mutable_bricks()) brick.Compress();
  Rng rng(45);
  for (int i = 0; i < 30; ++i) {
    ExpectPathsAgree(part, RandomQuery(schema, rng, false), nullptr);
  }
}

TEST(VecDifferentialTest, HashModeGrouping) {
  // Cardinality product 128^2 = 16384 > the 4096 direct-slot cap, so
  // grouping goes through GroupKeyIndex.
  const TableSchema schema = workload::MakeSchema(2, 128, 32, 2);
  TablePartition part = MakeLoadedPartition(schema, 8000, 5);
  Query q;
  q.table = "t";
  q.group_by = {0, 1};
  q.aggregations = {{0, AggOp::kSum}, {1, AggOp::kMin}, {0, AggOp::kCount}};
  ExpectPathsAgree(part, q, nullptr);
  q.filters.push_back({0, 10, 90});
  ExpectPathsAgree(part, q, nullptr);
  // And through the parallel merge.
  exec::ThreadPool pool(4);
  exec::ExecOptions opts;
  opts.num_workers = 4;
  opts.pool = &pool;
  opts.morsel_rows = 512;
  ExpectPathsAgree(part, q, nullptr, &opts);
}

TEST(VecDifferentialTest, NanAndInfinityMetrics) {
  const TableSchema schema = workload::MakeSchema(2, 16, 4, 2);
  TablePartition part("t", 0, schema);
  Rng rng(9);
  const double specials[] = {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(), -0.0,
                             1.5};
  for (int i = 0; i < 500; ++i) {
    Row row;
    row.dims = {static_cast<uint32_t>(rng.NextBounded(16)),
                static_cast<uint32_t>(rng.NextBounded(16))};
    row.metrics = {specials[rng.NextBounded(5)],
                   rng.NextDouble() * 10 - 5};
    ASSERT_TRUE(part.Insert(row).ok());
  }
  Rng qrng(10);
  for (int i = 0; i < 20; ++i) {
    ExpectPathsAgree(part, RandomQuery(schema, qrng, false), nullptr);
  }
}

TEST(VecDifferentialTest, RlePrefilterSkipsDecompression) {
  // Every row has dim0 == dim1, so the conjunction dim0=0 AND dim1=1 is
  // satisfiable at brick granularity (both buckets are bucket 0) but by
  // no actual row — the per-run RLE prefilter proves it without ever
  // decompressing.
  const TableSchema schema = workload::MakeSchema(2, 32, 16, 1);
  auto load = [&] {
    TablePartition part("t", 0, schema);
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.NextBounded(32));
      Row row;
      row.dims = {v, v};
      row.metrics = {1.0};
      EXPECT_TRUE(part.Insert(row).ok());
    }
    for (auto& [id, brick] : part.mutable_bricks()) brick.Compress();
    return part;
  };
  TablePartition vec_part = load();
  TablePartition int_part = load();

  Query q;
  q.table = "t";
  q.filters = {{0, 0, 0}, {1, 1, 1}};
  q.aggregations = {{0, AggOp::kSum}};

  QueryResult vec(1);
  ASSERT_TRUE(vec_part.Execute(q, vec, nullptr, nullptr).ok());
  EXPECT_EQ(vec.num_groups(), 0u);
  // The whole scan was answered from compressed runs: nothing was
  // decompressed, and every brick is still in its compressed tier.
  EXPECT_EQ(vec_part.decompressions(), 0);
  for (const auto& [id, brick] : vec_part.bricks()) {
    EXPECT_EQ(brick.state(), BrickState::kCompressed);
  }

  exec::ExecOptions int_opts;
  int_opts.scan_path = exec::ScanPath::kInterpreted;
  QueryResult oracle(1);
  ASSERT_TRUE(int_part.Execute(q, oracle, nullptr, &int_opts).ok());
  EXPECT_GT(int_part.decompressions(), 0);  // the oracle had to inflate
  EXPECT_TRUE(BitIdentical(vec, oracle));
}

// --- satellite regressions ---

TEST(MaterializeRowsTest, NanValuesOrderLast) {
  Query q;
  q.table = "t";
  q.group_by = {0};
  q.aggregations = {{0, AggOp::kSum}};
  q.order_by = 0;

  QueryResult result(1);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  result.Accumulate({0}, 0, 5.0);
  result.Accumulate({1}, 0, nan);
  result.Accumulate({2}, 0, 1.0);
  result.Accumulate({3}, 0, nan);

  q.descending = true;
  std::vector<ResultRow> rows = MaterializeRows(result, q);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].key, (QueryResult::GroupKey{0}));  // 5.0
  EXPECT_EQ(rows[1].key, (QueryResult::GroupKey{2}));  // 1.0
  // NaN rows sort after every real value, tie-broken by group key.
  EXPECT_EQ(rows[2].key, (QueryResult::GroupKey{1}));
  EXPECT_EQ(rows[3].key, (QueryResult::GroupKey{3}));

  q.descending = false;
  rows = MaterializeRows(result, q);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].key, (QueryResult::GroupKey{2}));
  EXPECT_EQ(rows[1].key, (QueryResult::GroupKey{0}));
  EXPECT_EQ(rows[2].key, (QueryResult::GroupKey{1}));
  EXPECT_EQ(rows[3].key, (QueryResult::GroupKey{3}));

  // LIMIT applied after the NaN-safe ordering keeps the real values.
  q.descending = true;
  q.limit = 2;
  rows = MaterializeRows(result, q);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, (QueryResult::GroupKey{0}));
  EXPECT_EQ(rows[1].key, (QueryResult::GroupKey{2}));
}

TEST(AggStateTest, ZeroCountMinMaxFinalizeToZero) {
  const AggState empty;
  EXPECT_EQ(empty.Finalize(AggOp::kMin), 0.0);
  EXPECT_EQ(empty.Finalize(AggOp::kMax), 0.0);
  EXPECT_EQ(empty.Finalize(AggOp::kAvg), 0.0);
  EXPECT_FALSE(std::isinf(empty.Finalize(AggOp::kMin)));
  AggState seen;
  seen.Add(-3.5);
  EXPECT_EQ(seen.Finalize(AggOp::kMin), -3.5);
  EXPECT_EQ(seen.Finalize(AggOp::kMax), -3.5);
}

TEST(FingerprintTest, CountMetricIndexIsNormalized) {
  Query a;
  a.table = "t";
  a.aggregations = {{0, AggOp::kCount}};
  Query b = a;
  b.aggregations = {{1, AggOp::kCount}};  // COUNT(m1) == COUNT(m0)
  EXPECT_EQ(CanonicalQueryFingerprint(a), CanonicalQueryFingerprint(b));
  // Ops that *do* read the metric keep distinct fingerprints.
  a.aggregations = {{0, AggOp::kSum}};
  b.aggregations = {{1, AggOp::kSum}};
  EXPECT_NE(CanonicalQueryFingerprint(a), CanonicalQueryFingerprint(b));
}

TEST(FingerprintTest, TableNamesCannotForgeFilterEncodings) {
  // Without the length prefix these two encoded identically: a table
  // literally named "t|f:0,1,2" versus a filtered query on table "t".
  Query tricky;
  tricky.table = "t|f:0,1,2";
  Query filtered;
  filtered.table = "t";
  filtered.filters = {{0, 1, 2}};
  EXPECT_NE(CanonicalQueryFingerprint(tricky),
            CanonicalQueryFingerprint(filtered));

  // Same forgery through a join's dimension-table name.
  Query join_tricky;
  join_tricky.table = "t";
  join_tricky.joins = {{0, "d,1|jf:0,0,5", 1}};
  Query join_plain;
  join_plain.table = "t";
  join_plain.joins = {{0, "d", 1}};
  join_plain.join_filters = {{0, 0, 5}};
  EXPECT_NE(CanonicalQueryFingerprint(join_tricky),
            CanonicalQueryFingerprint(join_plain));
}

TEST(SchemaTest, RejectsBrickIdSpaceOverflow) {
  // Three full-width dimensions: bucket product ~2^96 overflows the
  // uint64 brick-id space and must be rejected at validation time (the
  // catalog calls Validate before creating a table).
  TableSchema schema;
  schema.dimensions = {{"a", 4294967295u, 1},
                       {"b", 4294967295u, 1},
                       {"c", 4294967295u, 1}};
  schema.metrics = {{"m"}};
  const Status status = schema.Validate();
  EXPECT_FALSE(status.ok());

  // Two of them stay within uint64 ((2^32-1)^2 < 2^64) and validate.
  TableSchema fits;
  fits.dimensions = {{"a", 4294967295u, 1}, {"b", 4294967295u, 1}};
  fits.metrics = {{"m"}};
  EXPECT_TRUE(fits.Validate().ok());
}

}  // namespace
}  // namespace scalewall::cubrick
