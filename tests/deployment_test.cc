// Integration tests: the full stack (simulator + cluster + discovery + SM
// + Cubrick + proxy) driven through the Deployment public API.

#include <gtest/gtest.h>

#include <map>

#include "core/deployment.h"
#include "core/metrics.h"
#include "core/scalability_model.h"
#include "workload/generators.h"

namespace scalewall::core {
namespace {

DeploymentOptions SmallOptions(uint64_t seed = 13) {
  DeploymentOptions options;
  options.seed = seed;
  options.topology.regions = 3;
  options.topology.racks_per_region = 4;
  options.topology.servers_per_rack = 4;  // 48 servers
  options.max_shards = 5000;
  options.per_host_failure_probability = 0.0;  // deterministic by default
  return options;
}

cubrick::Query CountQuery(const std::string& table) {
  cubrick::Query q;
  q.table = table;
  q.aggregations = {cubrick::Aggregation{0, cubrick::AggOp::kCount},
                    cubrick::Aggregation{0, cubrick::AggOp::kSum}};
  return q;
}

class DeploymentTest : public ::testing::Test {
 protected:
  void Make(DeploymentOptions options) {
    dep_ = std::make_unique<Deployment>(options);
    schema_ = workload::MakeSchema(2, 64, 8, 1);
  }

  // Creates a table, loads `rows` rows, waits for discovery propagation.
  std::vector<cubrick::Row> Setup(const std::string& table, size_t rows,
                                  TableOptions table_options = {}) {
    EXPECT_TRUE(dep_->CreateTable(table, schema_, table_options).ok());
    Rng rng(99);
    auto data = workload::GenerateRows(schema_, rows, rng);
    EXPECT_TRUE(dep_->LoadRows(table, data).ok());
    dep_->RunFor(15 * kSecond);
    return data;
  }

  std::unique_ptr<Deployment> dep_;
  cubrick::TableSchema schema_;
};

TEST_F(DeploymentTest, CreateLoadQueryRoundtrip) {
  Make(SmallOptions());
  auto rows = Setup("t", 5000);
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, cubrick::AggOp::kCount),
                   5000.0);
  double expected_sum = 0;
  for (const auto& r : rows) expected_sum += r.metrics[0];
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 1, cubrick::AggOp::kSum),
                   expected_sum);
  EXPECT_EQ(outcome.num_partitions, 8u);
  EXPECT_LE(outcome.fanout, 8);
  EXPECT_EQ(outcome.attempts, 1);
}

TEST_F(DeploymentTest, PartialShardingLimitsFanout) {
  Make(SmallOptions());
  Setup("t", 2000);
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  ASSERT_TRUE(outcome.status.ok());
  // 48 servers but only 8 partitions: fan-out capped by partial sharding.
  EXPECT_LE(outcome.fanout, 8);
  EXPECT_GE(outcome.fanout, 1);
}

TEST_F(DeploymentTest, FullShardingSpansRegion) {
  DeploymentOptions options = SmallOptions();
  options.sharding = ShardingMode::kFull;
  Make(options);
  Setup("t", 5000);
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.num_partitions, 16u);  // all 16 servers of a region
  EXPECT_GT(outcome.fanout, 8);
}

TEST_F(DeploymentTest, DuplicateTableRejected) {
  Make(SmallOptions());
  Setup("t", 100);
  EXPECT_EQ(dep_->CreateTable("t", schema_).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DeploymentTest, QueryUnknownTableFails) {
  Make(SmallOptions());
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("ghost")));
  EXPECT_FALSE(outcome.status.ok());
}

TEST_F(DeploymentTest, GroupByMatchesReference) {
  Make(SmallOptions());
  auto rows = Setup("t", 3000);
  cubrick::Query q = CountQuery("t");
  q.group_by = {1};
  q.filters = {cubrick::FilterRange{0, 10, 40}};
  auto outcome = dep_->Query(cubrick::QueryRequest(q));
  ASSERT_TRUE(outcome.status.ok());
  std::map<uint32_t, double> expected;
  for (const auto& r : rows) {
    if (r.dims[0] >= 10 && r.dims[0] <= 40) expected[r.dims[1]] += 1.0;
  }
  EXPECT_EQ(outcome.result.num_groups(), expected.size());
  for (const auto& [key, count] : expected) {
    EXPECT_DOUBLE_EQ(
        *outcome.result.Value({key}, 0, cubrick::AggOp::kCount), count);
  }
}

TEST_F(DeploymentTest, FailoverRecoversDataCrossRegion) {
  Make(SmallOptions());
  Setup("t", 4000);

  // Kill the region-0 owner of partition 0.
  auto shard = dep_->catalog().ShardForPartition("t", 0);
  ASSERT_TRUE(shard.ok());
  const sm::ShardAssignment* assignment = dep_->sm(0).GetAssignment(*shard);
  ASSERT_NE(assignment, nullptr);
  cluster::ServerId victim = assignment->replicas[0].server;
  dep_->cluster().SetHealth(victim, cluster::ServerHealth::kDown);

  // Heartbeats lapse, SM fails over, the new owner recovers the partition
  // from a healthy region, discovery re-propagates.
  dep_->RunFor(2 * kMinute);
  const sm::ShardAssignment* after = dep_->sm(0).GetAssignment(*shard);
  ASSERT_NE(after, nullptr);
  ASSERT_EQ(after->replicas.size(), 1u);
  EXPECT_NE(after->replicas[0].server, victim);
  EXPECT_EQ(dep_->sm(0).stats().failovers, 1);

  // Region 0 queries answer with the full data again.
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t"), /*preferred_region=*/0));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, cubrick::AggOp::kCount),
                   4000.0);
}

TEST_F(DeploymentTest, QueriesRetryCrossRegionDuringFailover) {
  Make(SmallOptions());
  Setup("t", 1000);
  auto shard = dep_->catalog().ShardForPartition("t", 0);
  cluster::ServerId victim =
      dep_->sm(0).GetAssignment(*shard)->replicas[0].server;
  dep_->cluster().SetHealth(victim, cluster::ServerHealth::kDown);
  // Immediately (before failover finishes), a query preferring region 0
  // must transparently retry on another region and still succeed.
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t"), /*preferred_region=*/0));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_GT(outcome.attempts, 1);
  EXPECT_NE(outcome.region, 0);
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, cubrick::AggOp::kCount),
                   1000.0);
}

TEST_F(DeploymentTest, RegionDrainRoutesElsewhere) {
  DeploymentOptions options = SmallOptions();
  options.enable_failure_injector = true;
  options.failure_injector.enable_drains = false;
  options.failure_injector.mean_time_between_failures = 100000 * kDay;
  Make(options);
  Setup("t", 1000);
  // Disaster-preparedness exercise: take all of region 0 offline.
  dep_->failure_injector()->DrainRegion(0, 1 * kHour);
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t"), /*preferred_region=*/0));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_NE(outcome.region, 0);
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, cubrick::AggOp::kCount),
                   1000.0);
}

TEST_F(DeploymentTest, DrainMigratesShardsAndDataSurvives) {
  Make(SmallOptions());
  Setup("t", 3000);
  auto shard = dep_->catalog().ShardForPartition("t", 3);
  cluster::ServerId victim =
      dep_->sm(0).GetAssignment(*shard)->replicas[0].server;
  dep_->cluster().SetHealth(victim, cluster::ServerHealth::kDraining);
  dep_->RunFor(5 * kMinute);
  // All shards moved off the drained server.
  EXPECT_TRUE(dep_->sm(0).ShardsOnServer(victim).empty());
  EXPECT_GT(dep_->sm(0).stats().drain_migrations, 0);
  // Query still returns every row from region 0.
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t"), /*preferred_region=*/0));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.region, 0);
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, cubrick::AggOp::kCount),
                   3000.0);
}

TEST_F(DeploymentTest, RepartitionPreservesQueryResults) {
  Make(SmallOptions());
  auto rows = Setup("t", 4000);
  cubrick::Query q = CountQuery("t");
  q.filters = {cubrick::FilterRange{0, 0, 31}};
  auto before = dep_->Query(cubrick::QueryRequest(q));
  ASSERT_TRUE(before.status.ok());

  ASSERT_TRUE(dep_->Repartition("t", 16).ok());
  dep_->RunFor(15 * kSecond);
  auto info = dep_->catalog().GetTable("t");
  EXPECT_EQ(info->num_partitions, 16u);

  auto after = dep_->Query(cubrick::QueryRequest(q));
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_DOUBLE_EQ(*after.result.Value({}, 0, cubrick::AggOp::kCount),
                   *before.result.Value({}, 0, cubrick::AggOp::kCount));
  EXPECT_EQ(after.num_partitions, 16u);
  EXPECT_EQ(dep_->repartitions(), 1);
}

TEST_F(DeploymentTest, AutomaticRepartitionOnGrowth) {
  DeploymentOptions options = SmallOptions();
  options.repartition_threshold_rows = 200;  // tiny for the test
  Make(options);
  EXPECT_TRUE(dep_->CreateTable("t", schema_).ok());
  Rng rng(5);
  // 8 partitions x 200 rows threshold: 4000 rows must trigger growth.
  EXPECT_TRUE(
      dep_->LoadRows("t", workload::GenerateRows(schema_, 4000, rng)).ok());
  EXPECT_GT(dep_->repartitions(), 0);
  auto info = dep_->catalog().GetTable("t");
  EXPECT_GT(info->num_partitions, 8u);
  dep_->RunFor(15 * kSecond);
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, cubrick::AggOp::kCount),
                   4000.0);
}

TEST_F(DeploymentTest, ProxyCacheTracksRepartition) {
  Make(SmallOptions());
  Setup("t", 1000);
  dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  EXPECT_EQ(dep_->proxy().CachedPartitions("t"), 8u);
  ASSERT_TRUE(dep_->Repartition("t", 16).ok());
  dep_->RunFor(15 * kSecond);
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(dep_->proxy().CachedPartitions("t"), 16u);
}

TEST_F(DeploymentTest, SqlQueriesEndToEnd) {
  Make(SmallOptions());
  auto rows = Setup("events", 2000);
  // Schema from MakeSchema(2, 64, 8, 1): dim0, dim1; metric0.
  auto outcome = dep_->QuerySql(
      "SELECT dim1, SUM(metric0), COUNT(*) FROM events "
      "WHERE dim0 BETWEEN 0 AND 31 GROUP BY dim1",
      cubrick::QueryRequest{});
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  std::map<uint32_t, double> expected;
  for (const auto& r : rows) {
    if (r.dims[0] <= 31) expected[r.dims[1]] += r.metrics[0];
  }
  EXPECT_EQ(outcome.result.num_groups(), expected.size());
  for (const auto& [key, sum] : expected) {
    EXPECT_DOUBLE_EQ(*outcome.result.Value({key}, 0, cubrick::AggOp::kSum),
                     sum);
  }
}

TEST_F(DeploymentTest, SqlErrorsSurfaceCleanly) {
  Make(SmallOptions());
  Setup("events", 10);
  EXPECT_EQ(dep_->QuerySql("SELECT SUM(metric0) FROM ghost", cubrick::QueryRequest{})
          .status.code(),
            StatusCode::kNotFound);
  EXPECT_EQ(dep_->QuerySql("garbage query", cubrick::QueryRequest{}).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      dep_->QuerySql("SELECT SUM(nope) FROM events", cubrick::QueryRequest{})
          .status.code(),
      StatusCode::kInvalidArgument);
}

TEST_F(DeploymentTest, ProxyTracesQueries) {
  Make(SmallOptions());
  Setup("t", 100);
  dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  dep_->QuerySql("SELECT COUNT(*) FROM t", cubrick::QueryRequest{});
  auto traces = dep_->proxy().RecentTraces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].table, "t");
  EXPECT_EQ(traces[0].status, StatusCode::kOk);
  EXPECT_GT(traces[0].latency, 0);
  EXPECT_EQ(traces[1].attempts, 1);
}

TEST_F(DeploymentTest, DropTableRemovesEverything) {
  Make(SmallOptions());
  Setup("t", 500);
  ASSERT_TRUE(dep_->DropTable("t").ok());
  EXPECT_FALSE(dep_->catalog().HasTable("t"));
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(dep_->DropTable("t").code(), StatusCode::kNotFound);
}

TEST_F(DeploymentTest, TransientFailuresDegradeSingleAttemptSuccess) {
  DeploymentOptions options = SmallOptions();
  options.per_host_failure_probability = 0.01;  // exaggerated for the test
  options.proxy_options.max_attempts = 1;       // isolate one attempt
  Make(options);
  Setup("t", 800);
  int failures = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
    if (!outcome.status.ok()) ++failures;
    dep_->RunFor(500 * kMillisecond);
  }
  double observed = 1.0 - static_cast<double>(failures) / n;
  double expected = QuerySuccessRatio(0.01, 8);  // ~0.92
  EXPECT_NEAR(observed, expected, 0.05);
}

TEST_F(DeploymentTest, CrossRegionRetriesMaskTransientFailures) {
  DeploymentOptions options = SmallOptions();
  options.per_host_failure_probability = 0.01;
  options.proxy_options.max_attempts = 3;
  Make(options);
  Setup("t", 800);
  int failures = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
    if (!outcome.status.ok()) ++failures;
    dep_->RunFor(500 * kMillisecond);
  }
  // One attempt fails ~8%; three independent attempts fail ~0.05%.
  EXPECT_LE(failures, 4);
  EXPECT_GT(dep_->proxy().stats().cross_region_retries, 0);
}

TEST_F(DeploymentTest, CollisionCensusFindsNoSameTableCollisions) {
  Make(SmallOptions());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        dep_->CreateTable("t" + std::to_string(i), schema_).ok());
  }
  auto census = dep_->MeasureCollisions(0);
  EXPECT_EQ(census.tables, 40);
  EXPECT_EQ(census.tables_with_same_table_collision, 0);
}

TEST_F(DeploymentTest, AdmissionControlRejectsOverLimit) {
  DeploymentOptions options = SmallOptions();
  options.proxy_options.max_qps = 5;
  Make(options);
  Setup("t", 100);
  int rejected = 0;
  for (int i = 0; i < 20; ++i) {
    auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
    if (outcome.status.code() == StatusCode::kResourceExhausted) ++rejected;
  }
  EXPECT_EQ(rejected, 15);
  // After a second, capacity is back.
  dep_->RunFor(2 * kSecond);
  EXPECT_TRUE(dep_->Query(cubrick::QueryRequest(CountQuery("t"))).status.ok());
}

TEST_F(DeploymentTest, SqlJoinEndToEnd) {
  Make(SmallOptions());
  ASSERT_TRUE(dep_->CreateDimensionTable(
                      "dim1_groups", 64,
                      {cubrick::Dimension{"bucket", 4, 1}})
                  .ok());
  std::vector<cubrick::DimensionEntry> entries;
  for (uint32_t k = 0; k < 64; ++k) {
    entries.push_back(cubrick::DimensionEntry{k, {k % 4}});
  }
  ASSERT_TRUE(dep_->LoadDimensionEntries("dim1_groups", entries).ok());
  auto rows = Setup("t", 2000);
  auto outcome = dep_->QuerySql(
      "SELECT dim1_groups.bucket, COUNT(*) FROM t "
      "JOIN dim1_groups ON dim1 GROUP BY dim1_groups.bucket "
      "ORDER BY COUNT(*) DESC",
      cubrick::QueryRequest{});
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_EQ(outcome.result.num_groups(), 4u);
  std::map<uint32_t, double> expected;
  for (const auto& r : rows) expected[r.dims[1] % 4] += 1;
  double total = 0;
  for (const auto& row : outcome.rows) {
    EXPECT_DOUBLE_EQ(row.values[0], expected[row.key[0]]);
    total += row.values[0];
  }
  EXPECT_DOUBLE_EQ(total, 2000.0);
  // rows are ordered by COUNT(*) descending.
  for (size_t i = 1; i < outcome.rows.size(); ++i) {
    EXPECT_GE(outcome.rows[i - 1].values[0], outcome.rows[i].values[0]);
  }
}

TEST_F(DeploymentTest, WriteBehindHealsSkippedRegion) {
  Make(SmallOptions());
  Setup("t", 1000);
  // Kill region 1's owner of partition 0 and load immediately: the write
  // to region 1 is deferred, not lost.
  auto shard = dep_->catalog().ShardForPartition("t", 0);
  cluster::ServerId victim =
      dep_->sm(1).GetAssignment(*shard)->replicas[0].server;
  dep_->cluster().SetHealth(victim, cluster::ServerHealth::kDown);
  Rng rng(5);
  auto rows = workload::GenerateRows(schema_, 500, rng);
  ASSERT_TRUE(dep_->LoadRows("t", rows).ok());
  size_t pending = 0;
  for (cluster::RegionId r = 0; r < 3; ++r) {
    pending += dep_->PendingWriteRows(r, "t");
  }
  EXPECT_GT(pending, 0u);
  // After failover + retry cycles, the buffer drains and region 1
  // answers with the complete copy.
  dep_->RunFor(5 * kMinute);
  for (cluster::RegionId r = 0; r < 3; ++r) {
    EXPECT_EQ(dep_->PendingWriteRows(r, "t"), 0u) << r;
  }
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t"), 1));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.region, 1);
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, cubrick::AggOp::kCount),
                   1500.0);
}

TEST_F(DeploymentTest, RepartitionRefusedWithoutCompleteCopy) {
  Make(SmallOptions());
  Setup("t", 1000);
  // Break every region's copy of partition 0 simultaneously.
  auto shard = dep_->catalog().ShardForPartition("t", 0);
  for (cluster::RegionId r = 0; r < 3; ++r) {
    cluster::ServerId owner =
        dep_->sm(r).GetAssignment(*shard)->replicas[0].server;
    dep_->cluster().SetHealth(owner, cluster::ServerHealth::kDown);
  }
  EXPECT_EQ(dep_->Repartition("t", 16).code(), StatusCode::kUnavailable);
  // The table still has its original layout and (after failovers
  // recover... nothing here, all copies died together — but partition 0
  // was one of three regions' copies each; recovery pulls cross-region
  // from the remaining dead ones only, so wait for repair-free failover
  // to conclude) the metadata is intact.
  EXPECT_EQ(dep_->catalog().GetTable("t")->num_partitions, 8u);
}

TEST_F(DeploymentTest, MetricsExportCoversSubsystems) {
  Make(SmallOptions());
  Setup("t", 500);
  dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  std::string text = ExportMetricsText(*dep_);
  for (const char* metric : {
           "scalewall_fleet_servers{state=\"healthy\"} 48",
           "scalewall_catalog_tables 1",
           "scalewall_sm_placements_total{region=\"0\"} 8",
           "scalewall_sm_assigned_shards{region=\"2\"} 8",
           "scalewall_proxy_queries_total{result=\"submitted\"} 1",
           "scalewall_proxy_queries_total{result=\"succeeded\"} 1",
           "scalewall_engine_partial_queries_total",
           "scalewall_engine_memory_bytes",
       }) {
    EXPECT_NE(text.find(metric), std::string::npos) << metric << "\n" << text;
  }
}

TEST_F(DeploymentTest, ClusterResizeAddServers) {
  Make(SmallOptions());
  Setup("t", 2000);
  size_t before = dep_->cluster().ServersInRegion(0).size();
  ASSERT_TRUE(dep_->AddServers(0, 5).ok());
  EXPECT_EQ(dep_->cluster().ServersInRegion(0).size(), before + 5);
  // New servers are live members: queries keep working and the balancer
  // may use them.
  dep_->RunFor(1 * kHour);
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t")));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, cubrick::AggOp::kCount),
                   2000.0);
  EXPECT_EQ(dep_->AddServers(99, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dep_->AddServers(0, 0).code(), StatusCode::kInvalidArgument);
}

TEST_F(DeploymentTest, ClusterResizeDecommission) {
  Make(SmallOptions());
  Setup("t", 2000);
  // Decommission a server that hosts a partition of t.
  auto shard = dep_->catalog().ShardForPartition("t", 0);
  cluster::ServerId victim =
      dep_->sm(0).GetAssignment(*shard)->replicas[0].server;
  ASSERT_TRUE(dep_->DecommissionServer(victim).ok());
  dep_->RunFor(30 * kMinute);
  // Gone from the fleet; its shards live elsewhere; data intact.
  EXPECT_FALSE(dep_->cluster().Contains(victim));
  const sm::ShardAssignment* assignment = dep_->sm(0).GetAssignment(*shard);
  ASSERT_NE(assignment, nullptr);
  ASSERT_EQ(assignment->replicas.size(), 1u);
  EXPECT_NE(assignment->replicas[0].server, victim);
  auto outcome = dep_->Query(cubrick::QueryRequest(CountQuery("t"), 0));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_DOUBLE_EQ(*outcome.result.Value({}, 0, cubrick::AggOp::kCount),
                   2000.0);
  // Can't decommission twice or a non-existent server.
  EXPECT_EQ(dep_->DecommissionServer(victim).code(), StatusCode::kNotFound);
}

TEST_F(DeploymentTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](uint64_t seed) {
    DeploymentOptions options = SmallOptions(seed);
    Deployment dep(options);
    cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
    dep.CreateTable("t", schema);
    Rng rng(1);
    dep.LoadRows("t", workload::GenerateRows(schema, 500, rng));
    dep.RunFor(30 * kSecond);
    auto outcome = dep.Query(cubrick::QueryRequest(CountQuery("t")));
    return std::make_pair(outcome.latency, outcome.fanout);
  };
  EXPECT_EQ(run(77), run(77));
}

TEST_F(DeploymentTest, LoadBalancerMovesShardsUnderSkew) {
  DeploymentOptions options = SmallOptions();
  options.load_balancing.imbalance_threshold = 0.02;
  options.topology.racks_per_region = 2;
  options.topology.servers_per_rack = 4;  // 8 servers per region
  options.topology.memory_bytes = 2 << 20;
  Make(options);
  // 4-partition tables on 8 servers leave headroom to migrate without
  // creating shard collisions (a server may host at most one partition
  // of each table).
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(dep_->CreateTable("t" + std::to_string(i), schema_,
                                  TableOptions{.partitions = 4})
                    .ok());
  }
  Rng rng(3);
  // Load very unevenly: one table gets nearly all the data.
  ASSERT_TRUE(
      dep_->LoadRows("t0", workload::GenerateRows(schema_, 60000, rng)).ok());
  ASSERT_TRUE(
      dep_->LoadRows("t1", workload::GenerateRows(schema_, 500, rng)).ok());

  auto spread = [&] {
    auto utilization = dep_->sm(0).Utilization();
    double min_util = 1e18, max_util = 0;
    for (const auto& [server, util] : utilization) {
      min_util = std::min(min_util, util);
      max_util = std::max(max_util, util);
    }
    return max_util - min_util;
  };
  double before = spread();
  dep_->RunFor(2 * kHour);  // several balancer cycles
  EXPECT_GT(dep_->sm(0).stats().lb_runs, 0);
  // Balancing must not worsen the spread, and must leave it near the
  // threshold (the minimum achievable granularity is one shard's load).
  double after = spread();
  EXPECT_LE(after, before + 1e-9);
  EXPECT_LT(after, 0.25);
}

}  // namespace
}  // namespace scalewall::core
