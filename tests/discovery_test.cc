// Unit tests for the coordination datastore and the SMC-like service
// discovery tree.

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "discovery/datastore.h"
#include "discovery/service_discovery.h"
#include "sim/simulation.h"

namespace scalewall::discovery {
namespace {

class DatastoreTest : public ::testing::Test {
 protected:
  DatastoreTest() : sim_(1), store_(&sim_, /*session_timeout=*/15 * kSecond) {}
  sim::Simulation sim_;
  Datastore store_;
};

TEST_F(DatastoreTest, PutGetDelete) {
  EXPECT_TRUE(store_.Put("/a/b", "value").ok());
  auto got = store_.Get("/a/b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "value");
  EXPECT_TRUE(store_.Delete("/a/b").ok());
  EXPECT_EQ(store_.Get("/a/b").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store_.Delete("/a/b").code(), StatusCode::kNotFound);
}

TEST_F(DatastoreTest, ListByPrefix) {
  store_.Put("/svc/a", "1");
  store_.Put("/svc/b", "2");
  store_.Put("/other/c", "3");
  auto keys = store_.List("/svc/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "/svc/a");
  EXPECT_EQ(keys[1], "/svc/b");
}

TEST_F(DatastoreTest, SessionStaysAliveWithHeartbeats) {
  SessionId session = store_.CreateSession("host1");
  // Heartbeat every 5s, well within the 15s timeout.
  sim_.SchedulePeriodic(5 * kSecond, 5 * kSecond,
                        [&] { store_.Heartbeat(session); });
  sim_.RunFor(2 * kMinute);
  EXPECT_TRUE(store_.SessionAlive(session));
}

TEST_F(DatastoreTest, SessionExpiresWithoutHeartbeats) {
  SessionId session = store_.CreateSession("host1");
  bool expired = false;
  store_.Watch("", [&](const WatchEvent& event) {
    if (event.type == WatchEvent::Type::kSessionExpired &&
        event.session == session) {
      expired = true;
      EXPECT_EQ(event.key, "host1");
    }
  });
  sim_.RunFor(1 * kMinute);
  EXPECT_FALSE(store_.SessionAlive(session));
  EXPECT_TRUE(expired);
  EXPECT_EQ(store_.Heartbeat(session).code(), StatusCode::kNotFound);
}

TEST_F(DatastoreTest, EphemeralKeysVanishOnExpiry) {
  SessionId session = store_.CreateSession("host1");
  store_.Put("/eph/k", "v", session);
  store_.Put("/persistent", "v");
  sim_.RunFor(1 * kMinute);
  EXPECT_EQ(store_.Get("/eph/k").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store_.Get("/persistent").ok());
}

TEST_F(DatastoreTest, CloseSessionRemovesEphemeralsWithoutExpiryEvent) {
  SessionId session = store_.CreateSession("host1");
  store_.Put("/eph/k", "v", session);
  bool expired = false;
  store_.Watch("", [&](const WatchEvent& event) {
    if (event.type == WatchEvent::Type::kSessionExpired) expired = true;
  });
  EXPECT_TRUE(store_.CloseSession(session).ok());
  EXPECT_EQ(store_.Get("/eph/k").status().code(), StatusCode::kNotFound);
  sim_.RunFor(1 * kMinute);
  EXPECT_FALSE(expired);
}

TEST_F(DatastoreTest, WatchFiltersByPrefix) {
  int svc_events = 0, all_events = 0;
  store_.Watch("/svc/", [&](const WatchEvent&) { ++svc_events; });
  store_.Watch("", [&](const WatchEvent&) { ++all_events; });
  store_.Put("/svc/a", "1");
  store_.Put("/other/b", "2");
  EXPECT_EQ(svc_events, 1);
  EXPECT_EQ(all_events, 2);
}

TEST_F(DatastoreTest, PutOnExpiredSessionFails) {
  SessionId session = store_.CreateSession("host1");
  sim_.RunFor(1 * kMinute);
  EXPECT_EQ(store_.Put("/k", "v", session).code(), StatusCode::kNotFound);
}

// --- service discovery ---

class ServiceDiscoveryTest : public ::testing::Test {
 protected:
  ServiceDiscoveryTest() : sim_(7), sd_(&sim_) {}
  sim::Simulation sim_;
  ServiceDiscovery sd_;
};

TEST_F(ServiceDiscoveryTest, UnknownShardNotFound) {
  EXPECT_EQ(sd_.Resolve("svc", 1, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(sd_.ResolveAuthoritative("svc", 1).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServiceDiscoveryTest, AuthoritativeIsImmediate) {
  sd_.Publish("svc", 1, 42);
  auto got = sd_.ResolveAuthoritative("svc", 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 42u);
}

TEST_F(ServiceDiscoveryTest, PropagationDelaysViewers) {
  sd_.Publish("svc", 1, 42);
  // Immediately after the publish nothing has propagated.
  EXPECT_FALSE(sd_.Resolve("svc", 1, 5).ok());
  // After a generous interval every viewer sees it.
  sim_.RunFor(2 * kMinute);
  for (cluster::ServerId viewer = 0; viewer < 50; ++viewer) {
    auto got = sd_.Resolve("svc", 1, viewer);
    ASSERT_TRUE(got.ok()) << viewer;
    EXPECT_EQ(*got, 42u);
  }
}

TEST_F(ServiceDiscoveryTest, ViewersSeeOldValueDuringPropagation) {
  sd_.Publish("svc", 1, 10);
  sim_.RunFor(2 * kMinute);  // v1 fully propagated
  sd_.Publish("svc", 1, 20);
  // Right after the second publish, viewers still resolve the old server.
  int old_view = 0, new_view = 0;
  for (cluster::ServerId viewer = 0; viewer < 100; ++viewer) {
    auto got = sd_.Resolve("svc", 1, viewer);
    ASSERT_TRUE(got.ok());
    if (*got == 10u) ++old_view;
    if (*got == 20u) ++new_view;
  }
  EXPECT_EQ(old_view, 100);
  sim_.RunFor(2 * kMinute);
  for (cluster::ServerId viewer = 0; viewer < 100; ++viewer) {
    EXPECT_EQ(*sd_.Resolve("svc", 1, viewer), 20u);
  }
}

TEST_F(ServiceDiscoveryTest, StaggeredVisibilityAcrossViewers) {
  sd_.Publish("svc", 1, 10);
  sim_.RunFor(2 * kMinute);
  sd_.Publish("svc", 1, 20);
  // Partway through propagation, some viewers see the new mapping and
  // some the old (seconds-scale delays; ~1.8s median end-to-end).
  sim_.RunFor(1800 * kMillisecond);
  int old_view = 0, new_view = 0;
  for (cluster::ServerId viewer = 0; viewer < 200; ++viewer) {
    auto got = sd_.Resolve("svc", 1, viewer);
    ASSERT_TRUE(got.ok());
    (*got == 10u ? old_view : new_view)++;
  }
  EXPECT_GT(old_view, 10);
  EXPECT_GT(new_view, 10);
}

TEST_F(ServiceDiscoveryTest, UnpublishPropagates) {
  sd_.Publish("svc", 1, 10);
  sim_.RunFor(2 * kMinute);
  sd_.Unpublish("svc", 1);
  EXPECT_TRUE(sd_.Resolve("svc", 1, 3).ok());  // still visible (stale)
  sim_.RunFor(2 * kMinute);
  EXPECT_EQ(sd_.Resolve("svc", 1, 3).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(sd_.ResolveAuthoritative("svc", 1).ok());
}

TEST_F(ServiceDiscoveryTest, DelayDistributionIsSecondsScale) {
  Rng rng(3);
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    h.Add(ToSeconds(sd_.SampleDelay(rng)));
  }
  // Two lognormal hops with 0.9s median each: median ~1.8s, long tail.
  EXPECT_GT(h.P50(), 1.0);
  EXPECT_LT(h.P50(), 3.5);
  EXPECT_GT(h.P999(), h.P50() * 2);
}

TEST_F(ServiceDiscoveryTest, PropagationDelayDeterministicPerViewer) {
  SimDuration d1 = sd_.PropagationDelay(1, 7);
  SimDuration d2 = sd_.PropagationDelay(1, 7);
  EXPECT_EQ(d1, d2);
  EXPECT_NE(sd_.PropagationDelay(1, 7), sd_.PropagationDelay(2, 7));
}

TEST_F(ServiceDiscoveryTest, VersionHistoryTruncationStillResolves) {
  ServiceDiscoveryOptions options;
  options.max_versions = 4;
  ServiceDiscovery sd(&sim_, options);
  for (int i = 0; i < 20; ++i) {
    sd.Publish("svc", 1, static_cast<cluster::ServerId>(i));
  }
  // Even with every version "in flight", truncation guarantees viewers
  // resolve something.
  auto got = sd.Resolve("svc", 1, 9);
  ASSERT_TRUE(got.ok());
  EXPECT_GE(*got, 16u);  // one of the retained versions
}

}  // namespace
}  // namespace scalewall::discovery
