// Unit tests for scalewall::exec: the work-stealing thread pool, task
// groups (including nested groups relying on helping Wait), morsel
// splitting, the self-scheduling morsel driver, and cooperative
// cancellation.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "exec/cancel.h"
#include "exec/morsel.h"
#include "exec/thread_pool.h"

namespace scalewall::exec {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_GE(pool.tasks_executed(), 100);
}

TEST(ThreadPoolTest, TracksSubmissionsAndQueueDepth) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.tasks_submitted(), 0);
  EXPECT_EQ(pool.queue_depth(), 0);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Run([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 64);
  // TaskGroup::Run goes through Submit, so every task is counted; the
  // group tasks plus possible helper-executed ones all drain.
  EXPECT_GE(pool.tasks_submitted(), 64);
  EXPECT_EQ(pool.queue_depth(), 0);
  EXPECT_GE(pool.tasks_executed() + pool.steals(), 0);
}

TEST(ThreadPoolTest, SingleWorkerPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) group.Run([&counter] { counter.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, CurrentWorkerIndexBoundedInsideTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.CurrentWorkerIndex(), -1);
  std::atomic<int> bad{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) {
    group.Run([&] {
      // A pool worker reports its index; a task stolen by a helping
      // Wait() runs on the waiting (non-pool) thread and reports -1.
      int index = pool.CurrentWorkerIndex();
      if (index < -1 || index >= pool.num_threads()) bad.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPoolTest, NestedTaskGroupsDoNotDeadlock) {
  // A task that opens its own group and Waits inside a pool worker must
  // complete even when the pool has a single thread: Wait() helps by
  // draining the deques from the waiting thread.
  ThreadPool pool(1);
  std::atomic<int> inner_done{0};
  TaskGroup outer(&pool);
  outer.Run([&] {
    TaskGroup inner(&pool);
    for (int i = 0; i < 8; ++i) {
      inner.Run([&inner_done] { inner_done.fetch_add(1); });
    }
    inner.Wait();
  });
  outer.Wait();
  EXPECT_EQ(inner_done.load(), 8);
}

TEST(ThreadPoolTest, ExternalSubmitRoundRobinsAndFinishes) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) group.Run([&counter] { ++counter; });
  group.Wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(SplitMorselsTest, FixedBoundariesAndOrder) {
  auto morsels = SplitMorsels({10, 0, 25}, 10);
  const std::vector<MorselRange> expected = {
      {0, 0, 10}, {1, 0, 0}, {2, 0, 10}, {2, 10, 20}, {2, 20, 25}};
  EXPECT_EQ(morsels, expected);
}

TEST(SplitMorselsTest, ZeroMorselRowsFallsBackToDefault) {
  auto morsels = SplitMorsels({5}, 0);
  ASSERT_EQ(morsels.size(), 1u);
  EXPECT_EQ(morsels[0], (MorselRange{0, 0, 5}));
}

TEST(ForEachMorselTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  MorselMetrics metrics;
  Status status = ForEachMorsel(
      &pool, 4, kCount, [&](size_t i) { hits[i].fetch_add(1); },
      /*cancel=*/nullptr, &metrics);
  ASSERT_TRUE(status.ok());
  for (size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_EQ(metrics.executed, static_cast<int64_t>(kCount));
  EXPECT_EQ(metrics.skipped, 0);
}

TEST(ForEachMorselTest, SerialFallbackWithoutPool) {
  std::vector<int> hits(10, 0);
  Status status =
      ForEachMorsel(nullptr, 4, hits.size(), [&](size_t i) { hits[i]++; });
  ASSERT_TRUE(status.ok());
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ForEachMorselTest, PreCancelledSchedulesNothing) {
  ThreadPool pool(4);
  CancelToken cancel;
  cancel.RequestCancel();
  std::atomic<int> ran{0};
  MorselMetrics metrics;
  Status status = ForEachMorsel(
      &pool, 4, 100, [&](size_t) { ran.fetch_add(1); }, &cancel, &metrics);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(metrics.executed, 0);
  EXPECT_EQ(metrics.skipped, 100);
}

TEST(ForEachMorselTest, MidRunCancellationStopsSchedulingMorsels) {
  ThreadPool pool(2);
  CancelToken cancel;
  std::atomic<int> ran{0};
  MorselMetrics metrics;
  // The body cancels the token after a handful of morsels: remaining
  // morsels must never start.
  Status status = ForEachMorsel(
      &pool, 2, 10000,
      [&](size_t) {
        if (ran.fetch_add(1) + 1 == 5) cancel.RequestCancel();
      },
      &cancel, &metrics);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  // At most one extra morsel per worker may already have been dequeued
  // when the token flipped.
  EXPECT_LE(ran.load(), 5 + pool.num_threads());
  EXPECT_GT(metrics.skipped, 0);
}

TEST(ForEachMorselTest, SerialPathHonoursCancellation) {
  CancelToken cancel;
  int ran = 0;
  Status status = ForEachMorsel(nullptr, 1, 100,
                                [&](size_t) {
                                  if (++ran == 3) cancel.RequestCancel();
                                },
                                &cancel);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(ran, 3);
}

TEST(ForEachMorselTest, WorkStealingKeepsAllWorkersProductive) {
  // Many tiny morsels submitted through one group: regardless of where
  // the deque entries land, the shared morsel counter plus stealing must
  // complete them all.
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  Status status = ForEachMorsel(&pool, 8, 5000, [&](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i));
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(sum.load(), 5000LL * 4999 / 2);
}

}  // namespace
}  // namespace scalewall::exec
