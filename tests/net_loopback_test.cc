// End-to-end transport byte-identity.
//
// 1. A Deployment with TransportMode::kSim must be *bit-identical* to
//    the direct-call seed path over the same seed: every query's rows,
//    latency, attempt counts — with transport metrics accumulating and
//    "net " spans joining the query traces.
// 2. A real-socket cluster (in-process epoll loops: one ProxyNode + two
//    ServerNodes on loopback) fanning out the deterministic dataset's
//    query must return rows bit-identical to the same-seed sim-transport
//    Deployment run — the epoll and sim backends carry the same frames.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "cubrick/sql.h"
#include "net/epoll_transport.h"
#include "node/dataset.h"
#include "node/node.h"

namespace scalewall {
namespace {

using core::Deployment;
using core::DeploymentOptions;
using core::TransportMode;

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Bit-level equality: doubles compared as IEEE-754 patterns, so +0/-0
// and every last mantissa bit count.
void ExpectRowsBitIdentical(const std::vector<cubrick::ResultRow>& a,
                            const std::vector<cubrick::ResultRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << "row " << i;
    ASSERT_EQ(a[i].values.size(), b[i].values.size()) << "row " << i;
    for (size_t v = 0; v < a[i].values.size(); ++v) {
      EXPECT_EQ(Bits(a[i].values[v]), Bits(b[i].values[v]))
          << "row " << i << " value " << v;
    }
  }
}

DeploymentOptions BaseOptions(uint64_t seed, TransportMode transport) {
  DeploymentOptions options;
  options.seed = seed;
  options.topology.regions = 2;
  options.topology.racks_per_region = 2;
  options.topology.servers_per_rack = 4;  // 8 servers per region
  options.max_shards = 5000;
  options.transport = transport;
  options.subquery_policy.max_subquery_retries = 2;
  options.subquery_policy.hedge_quantile = 0.99;
  options.per_host_failure_probability = 0.001;
  options.enable_result_caching = true;
  return options;
}

std::vector<cubrick::Query> TestQueries(const cubrick::TableSchema& schema) {
  std::vector<cubrick::Query> queries;
  const char* sqls[] = {
      "SELECT SUM(spend), COUNT(clicks) FROM ads",
      "SELECT region, SUM(spend) FROM ads GROUP BY region "
      "ORDER BY SUM(spend) DESC LIMIT 4",
      "SELECT day, region, AVG(spend), MAX(clicks) FROM ads "
      "WHERE day BETWEEN 5 AND 20 AND region < 6 GROUP BY day, region "
      "ORDER BY AVG(spend) DESC LIMIT 10",
      "SELECT product, MIN(spend), SUM(clicks) FROM ads "
      "WHERE product IN (3, 17, 40, 63) GROUP BY product",
  };
  for (const char* sql : sqls) {
    auto query = cubrick::ParseQuery(sql, schema);
    EXPECT_TRUE(query.ok()) << sql << ": " << query.status().ToString();
    if (query.ok()) queries.push_back(*query);
  }
  return queries;
}

// Runs the full scenario (load, time, queries) on one deployment.
struct ScenarioRun {
  std::vector<cubrick::QueryOutcome> outcomes;
};

ScenarioRun RunScenario(Deployment& dep, bool tracing) {
  ScenarioRun run;
  const node::DatasetOptions dataset;  // the node dataset, reused as-is
  EXPECT_TRUE(dep.CreateTable(node::DatasetTable(), node::DatasetSchema()).ok());
  EXPECT_TRUE(
      dep.LoadRows(node::DatasetTable(), node::GenerateRows(dataset)).ok());
  dep.RunFor(30 * kSecond);
  for (const cubrick::Query& query : TestQueries(node::DatasetSchema())) {
    cubrick::QueryRequest request(query);
    request.tracing = tracing;
    run.outcomes.push_back(dep.Query(request));
    // Repeat once: exercises the merged-cache epoch-validation hop
    // (CallEpochs under kSim).
    run.outcomes.push_back(dep.Query(request));
  }
  return run;
}

TEST(TransportLoopbackTest, SimTransportIsByteIdenticalToDirect) {
  constexpr uint64_t kSeed = 1234;
  Deployment direct(BaseOptions(kSeed, TransportMode::kDirect));
  Deployment mediated(BaseOptions(kSeed, TransportMode::kSim));
  ASSERT_EQ(nullptr, direct.sim_network());
  ASSERT_NE(nullptr, mediated.sim_network());

  ScenarioRun direct_run = RunScenario(direct, /*tracing=*/false);
  ScenarioRun mediated_run = RunScenario(mediated, /*tracing=*/false);

  ASSERT_EQ(direct_run.outcomes.size(), mediated_run.outcomes.size());
  for (size_t i = 0; i < direct_run.outcomes.size(); ++i) {
    const auto& d = direct_run.outcomes[i];
    const auto& m = mediated_run.outcomes[i];
    EXPECT_EQ(d.status.code(), m.status.code()) << "query " << i;
    ExpectRowsBitIdentical(d.rows, m.rows);
    // The transport completes inline on the modeled clock: identical
    // latencies, attempts and reliability activity, not just results.
    EXPECT_EQ(d.latency, m.latency) << "query " << i;
    EXPECT_EQ(d.attempts, m.attempts) << "query " << i;
    EXPECT_EQ(d.fanout, m.fanout) << "query " << i;
    EXPECT_EQ(d.subquery_retries, m.subquery_retries) << "query " << i;
    EXPECT_EQ(d.hedges_fired, m.hedges_fired) << "query " << i;
    EXPECT_EQ(d.cache_hits, m.cache_hits) << "query " << i;
  }

  // The mediated run really crossed the transport: frames in both
  // directions, bytes counted, and modeled RTT samples recorded.
  const net::TransportStats& stats = mediated.sim_network()->stats();
  EXPECT_GT(stats.frames_out.value(), 0);
  EXPECT_GT(stats.frames_in.value(), 0);
  EXPECT_GT(stats.bytes_out.value(), 0);
  EXPECT_GT(stats.rtt_ms.count(), 0);
}

TEST(TransportLoopbackTest, SimTransportRecordsNetSpansInQueryTraces) {
  DeploymentOptions options = BaseOptions(77, TransportMode::kSim);
  options.enable_query_tracing = true;
  Deployment dep(options);
  ScenarioRun run = RunScenario(dep, /*tracing=*/true);
  for (const auto& outcome : run.outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  }

  obs::TraceSink& sink = dep.trace_sink();
  ASSERT_NE(sink.LastTraceId(), 0u);
  // At least one trace must contain a transport span tagged with the
  // sim backend, nested inside the query tree. (The proxy/coordinator
  // also record *modeled* "net hops"/"net sK" spans without a backend
  // tag — those only need to join the tree.)
  bool found_transport_span = false;
  for (uint64_t t : sink.TraceIds()) {
    for (const obs::SpanRecord& span : sink.Spans(t)) {
      if (span.name.rfind("net ", 0) != 0) continue;
      EXPECT_NE(0u, span.parent) << "net span must join the query tree";
      for (const auto& [key, value] : span.tags) {
        if (key == "backend" && value == "sim") found_transport_span = true;
      }
    }
  }
  EXPECT_TRUE(found_transport_span);
}

TEST(TransportLoopbackTest, EpollClusterMatchesSimDeploymentByteForByte) {
  // Real sockets: two server nodes + one proxy node on loopback.
  node::NodeOptions server0;
  server0.server_id = 0;
  server0.num_servers = 2;
  node::ServerNode s0(server0);
  ASSERT_TRUE(s0.Start().ok());

  node::NodeOptions server1;
  server1.server_id = 1;
  server1.num_servers = 2;
  node::ServerNode s1(server1);
  ASSERT_TRUE(s1.Start().ok());

  node::NodeOptions proxy_options;
  proxy_options.num_servers = 2;
  std::map<std::string, std::string> peers = {
      {"s0", "127.0.0.1:" + std::to_string(s0.port())},
      {"s1", "127.0.0.1:" + std::to_string(s1.port())},
  };
  node::ProxyNode proxy(proxy_options, peers);
  ASSERT_TRUE(proxy.Start().ok());

  net::EpollTransport client;
  ASSERT_TRUE(client.Start());
  client.MapPeer("proxy", "127.0.0.1:" + std::to_string(proxy.port()));

  // Sim side: a deployment loaded with the very same dataset (the
  // sim-transport run of the same seed).
  DeploymentOptions dep_options = BaseOptions(9, TransportMode::kSim);
  dep_options.per_host_failure_probability = 0.0;
  Deployment dep(dep_options);
  const node::DatasetOptions dataset;
  ASSERT_TRUE(
      dep.CreateTable(node::DatasetTable(), node::DatasetSchema()).ok());
  ASSERT_TRUE(
      dep.LoadRows(node::DatasetTable(), node::GenerateRows(dataset)).ok());
  dep.RunFor(30 * kSecond);

  for (const cubrick::Query& query : TestQueries(node::DatasetSchema())) {
    cubrick::QueryRequest request(query);
    auto socket_rows = node::SubmitClientQuery(client, "proxy", request);
    ASSERT_TRUE(socket_rows.ok()) << socket_rows.status().ToString();
    EXPECT_EQ(2, socket_rows->fanout);

    auto sim_outcome = dep.Query(request);
    ASSERT_TRUE(sim_outcome.status.ok()) << sim_outcome.status;
    ExpectRowsBitIdentical(sim_outcome.rows, socket_rows->rows);

    // And both match the single-process oracle.
    auto oracle = node::ExecuteLocal(dataset, query);
    ASSERT_TRUE(oracle.ok());
    ExpectRowsBitIdentical(*oracle, socket_rows->rows);
  }

  // Metrics present on the socket side too.
  EXPECT_GT(client.stats().frames_out.value(), 0);
  EXPECT_GT(client.stats().rtt_ms.count(), 0);
  EXPECT_GT(proxy.transport().stats().accepts.value(), 0);
  EXPECT_GT(s0.transport().stats().frames_in.value(), 0);
  EXPECT_GT(s1.transport().stats().frames_in.value(), 0);

  client.Stop();
  proxy.Stop();
  s0.Stop();
  s1.Stop();
}

TEST(TransportLoopbackTest, WireDeadlinePropagatesRemainingBudget) {
  // A client deadline must reach the servers as remaining budget: a
  // server-side subquery that would exceed it fails the query with
  // kDeadlineExceeded at the proxy (converted at serialization time,
  // enforced by the per-call timeout).
  node::NodeOptions server0;
  server0.server_id = 0;
  server0.num_servers = 1;
  node::ServerNode s0(server0);
  ASSERT_TRUE(s0.Start().ok());

  node::NodeOptions proxy_options;
  proxy_options.num_servers = 1;
  node::ProxyNode proxy(
      proxy_options,
      {{"s0", "127.0.0.1:" + std::to_string(s0.port())}});
  ASSERT_TRUE(proxy.Start().ok());

  net::EpollTransport client;
  ASSERT_TRUE(client.Start());
  client.MapPeer("proxy", "127.0.0.1:" + std::to_string(proxy.port()));

  auto query = cubrick::ParseQuery("SELECT SUM(spend) FROM ads",
                                   node::DatasetSchema());
  ASSERT_TRUE(query.ok());
  cubrick::QueryRequest request(*query);
  request.deadline = 1;  // 1 microsecond: nothing real completes in time
  auto rows = node::SubmitClientQuery(client, "proxy", request);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(StatusCode::kDeadlineExceeded, rows.status().code());

  client.Stop();
  proxy.Stop();
  s0.Stop();
}

}  // namespace
}  // namespace scalewall
