// Transport backend tests: the sim backend's inline delivery and stats,
// and the epoll backend over real loopback sockets — echo round-trips,
// error propagation with stable status codes, per-call timeouts,
// bounded in-flight windows with visible backpressure, and teardown.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/epoll_transport.h"
#include "net/sim_transport.h"
#include "obs/metrics_registry.h"
#include "sim/simulation.h"

namespace scalewall::net {
namespace {

Handler EchoHandler() {
  return [](const Message& request, const CallSideband&) -> Result<Message> {
    return Message{FrameType::kPong, "echo:" + request.payload};
  };
}

// --- sim backend ---

TEST(SimTransportTest, InlineEchoAndStats) {
  sim::Simulation simulation(1);
  obs::MetricsRegistry metrics;
  SimNetwork network(&simulation, &metrics);
  network.Node("server")->SetHandler(EchoHandler());
  SimTransport* client = network.Node("client");

  auto response = client->Call("server", Message{FrameType::kPing, "hello"});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ("echo:hello", response->payload);
  EXPECT_EQ("sim", client->backend());
  // Request + response, counted on both directions of the shared block.
  EXPECT_EQ(2, client->stats().frames_out.value());
  EXPECT_EQ(2, client->stats().frames_in.value());
  EXPECT_GT(client->stats().bytes_out.value(), 0);
}

TEST(SimTransportTest, MissingPeerAndHandlerErrors) {
  sim::Simulation simulation(1);
  SimNetwork network(&simulation);
  SimTransport* client = network.Node("client");

  auto missing = client->Call("ghost", Message{FrameType::kPing, ""});
  EXPECT_EQ(StatusCode::kUnavailable, missing.status().code());

  network.Node("flaky")->SetHandler(
      [](const Message&, const CallSideband&) -> Result<Message> {
        return Status::NotFound("no such table");
      });
  auto failed = client->Call("flaky", Message{FrameType::kPing, ""});
  EXPECT_EQ(StatusCode::kNotFound, failed.status().code());
  EXPECT_EQ(1, client->stats().handler_errors.value());

  // A removed node becomes unavailable (decommission path).
  network.Node("gone")->SetHandler(EchoHandler());
  network.RemoveNode("gone");
  auto removed = client->Call("gone", Message{FrameType::kPing, ""});
  EXPECT_EQ(StatusCode::kUnavailable, removed.status().code());
}

TEST(SimTransportTest, RecordModeledRttFeedsHistogram) {
  sim::Simulation simulation(1);
  SimNetwork network(&simulation);
  SimTransport* client = network.Node("client");
  client->RecordModeledRtt(12.5);
  EXPECT_EQ(1u, network.stats().rtt_ms.count());
}

// --- epoll backend ---

struct LoopbackPair {
  EpollTransport server;
  EpollTransport client;

  explicit LoopbackPair(EpollTransportOptions server_options = {},
                        EpollTransportOptions client_options = {})
      : server(nullptr, server_options), client(nullptr, client_options) {}

  void Start(Handler handler) {
    server.SetHandler(std::move(handler));
    ASSERT_TRUE(server.Start());
    ASSERT_TRUE(server.Listen("127.0.0.1:0").ok());
    ASSERT_TRUE(client.Start());
    client.MapPeer("server",
                   "127.0.0.1:" + std::to_string(server.listen_port()));
  }
};

TEST(EpollTransportTest, LoopbackEcho) {
  LoopbackPair pair;
  pair.Start(EchoHandler());

  for (int i = 0; i < 10; ++i) {
    auto response = pair.client.Call(
        "server", Message{FrameType::kSubqueryRequest, "m" + std::to_string(i)});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(FrameType::kPong, response->type);
    EXPECT_EQ("echo:m" + std::to_string(i), response->payload);
  }
  EXPECT_EQ("epoll", pair.client.backend());
  EXPECT_EQ(1, pair.client.stats().connects.value());
  EXPECT_EQ(1, pair.server.stats().accepts.value());
  EXPECT_EQ(10, pair.client.stats().frames_out.value());
  EXPECT_EQ(10u, pair.client.stats().rtt_ms.count());

  pair.client.Stop();
  pair.server.Stop();
}

TEST(EpollTransportTest, PingFrameAnsweredByTransportItself) {
  // kPing is answered by the transport layer, no handler installed.
  EpollTransport server;
  ASSERT_TRUE(server.Start());
  ASSERT_TRUE(server.Listen("127.0.0.1:0").ok());
  EpollTransport client;
  ASSERT_TRUE(client.Start());
  auto response =
      client.Call("127.0.0.1:" + std::to_string(server.listen_port()),
                  Message{FrameType::kPing, ""});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(FrameType::kPong, response->type);
  client.Stop();
  server.Stop();
}

TEST(EpollTransportTest, StatusCodesSurviveTheWire) {
  LoopbackPair pair;
  pair.Start([](const Message& request,
                const CallSideband&) -> Result<Message> {
    if (request.type != FrameType::kSubqueryRequest) {
      return Status::Unimplemented("unsupported frame");
    }
    return Status::ResourceExhausted("scan queue full");
  });

  auto unimplemented =
      pair.client.Call("server", Message{FrameType::kClientQuery, ""});
  EXPECT_EQ(StatusCode::kUnimplemented, unimplemented.status().code());
  auto exhausted =
      pair.client.Call("server", Message{FrameType::kSubqueryRequest, ""});
  EXPECT_EQ(StatusCode::kResourceExhausted, exhausted.status().code());
  EXPECT_EQ("scan queue full", exhausted.status().message());
  EXPECT_EQ(2, pair.server.stats().handler_errors.value());

  pair.client.Stop();
  pair.server.Stop();
}

TEST(EpollTransportTest, SlowHandlerHitsCallTimeout) {
  EpollTransportOptions server_options;
  server_options.handler_threads = 1;  // sleep off the loop thread
  LoopbackPair pair(server_options);
  pair.Start([](const Message&, const CallSideband&) -> Result<Message> {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return Message{FrameType::kPong, "late"};
  });

  CallOptions options;
  options.timeout = 30'000;  // 30ms, well under the handler's 300ms
  auto response = pair.client.Call(
      "server", Message{FrameType::kSubqueryRequest, ""}, options);
  EXPECT_EQ(StatusCode::kDeadlineExceeded, response.status().code());
  EXPECT_EQ(1, pair.client.stats().timeouts.value());

  pair.client.Stop();
  pair.server.Stop();
}

TEST(EpollTransportTest, ConnectionRefusedFailsCall) {
  EpollTransport client;
  ASSERT_TRUE(client.Start());
  CallOptions options;
  options.timeout = 500'000;
  // Port 1 on loopback: refused immediately.
  auto response =
      client.Call("127.0.0.1:1", Message{FrameType::kPing, ""}, options);
  EXPECT_FALSE(response.ok());
  client.Stop();
}

TEST(EpollTransportTest, BackpressureRejectsBeyondWindowAndQueue) {
  EpollTransportOptions server_options;
  server_options.handler_threads = 1;
  EpollTransportOptions client_options;
  client_options.max_inflight_per_peer = 1;
  client_options.max_queued_per_peer = 2;
  LoopbackPair pair(server_options, client_options);
  pair.Start([](const Message&, const CallSideband&) -> Result<Message> {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Message{FrameType::kPong, ""};
  });

  constexpr int kCalls = 8;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::vector<Status> statuses(kCalls, Status::Ok());
  for (int i = 0; i < kCalls; ++i) {
    pair.client.CallAsync("server", Message{FrameType::kSubqueryRequest, ""},
                          {}, [&, i](Result<Message> response) {
                            std::lock_guard<std::mutex> lock(mu);
                            statuses[i] = response.status();
                            if (++done == kCalls) cv.notify_all();
                          });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return done == kCalls; }));
  }
  int ok = 0, rejected = 0;
  for (const Status& status : statuses) {
    if (status.ok()) ++ok;
    if (status.code() == StatusCode::kResourceExhausted) ++rejected;
  }
  // Window (1) + queue (2) admit 3; the burst's remainder is shed with
  // kResourceExhausted — backpressure is visible, not an unbounded queue.
  EXPECT_EQ(3, ok);
  EXPECT_EQ(kCalls - 3, rejected);
  EXPECT_EQ(kCalls - 3, pair.client.stats().rejected.value());

  pair.client.Stop();
  pair.server.Stop();
}

TEST(EpollTransportTest, ConcurrentCallersMultiplexOneConnection) {
  EpollTransportOptions server_options;
  server_options.handler_threads = 4;
  LoopbackPair pair(server_options);
  pair.Start(EchoHandler());

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        std::string body = std::to_string(t) + ":" + std::to_string(i);
        auto response = pair.client.Call(
            "server", Message{FrameType::kSubqueryRequest, body});
        if (!response.ok() || response->payload != "echo:" + body) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(1, pair.client.stats().connects.value());

  pair.client.Stop();
  pair.server.Stop();
}

TEST(EpollTransportTest, StopFailsPendingCalls) {
  EpollTransportOptions server_options;
  server_options.handler_threads = 1;
  LoopbackPair pair(server_options);
  pair.Start([](const Message&, const CallSideband&) -> Result<Message> {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    return Message{FrameType::kPong, ""};
  });

  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  Status status = Status::Ok();
  pair.client.CallAsync("server", Message{FrameType::kSubqueryRequest, ""}, {},
                        [&](Result<Message> response) {
                          std::lock_guard<std::mutex> lock(mu);
                          status = response.status();
                          completed = true;
                          cv.notify_all();
                        });
  // Give the call a moment to go out, then tear the client down.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pair.client.Stop();
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return completed; }));
  }
  EXPECT_EQ(StatusCode::kUnavailable, status.code());
  pair.server.Stop();
}

}  // namespace
}  // namespace scalewall::net
