// Wire-format tests: stable status codes, frame robustness, and the
// randomized differential suite — every cubrick codec is driven with
// randomized structures, round-tripped, and the re-encoded bytes are
// compared to the originals (encode∘decode must be the identity on the
// wire). Truncations, trailing garbage, oversized lengths and version
// skew must all be rejected, never misdecoded.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "cubrick/wire.h"
#include "net/telemetry.h"
#include "net/wire.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace scalewall {
namespace {

using cubrick::Query;
using cubrick::QueryResult;

// --- satellite: stable integer code <-> enum mapping ---

TEST(StatusCodeTest, StableIntegerMapping) {
  // These values are wire-stable; changing any is a protocol break.
  EXPECT_EQ(0, StatusCodeToInt(StatusCode::kOk));
  EXPECT_EQ(1, StatusCodeToInt(StatusCode::kInvalidArgument));
  EXPECT_EQ(2, StatusCodeToInt(StatusCode::kNotFound));
  EXPECT_EQ(3, StatusCodeToInt(StatusCode::kAlreadyExists));
  EXPECT_EQ(4, StatusCodeToInt(StatusCode::kUnavailable));
  EXPECT_EQ(5, StatusCodeToInt(StatusCode::kNonRetryable));
  EXPECT_EQ(6, StatusCodeToInt(StatusCode::kResourceExhausted));
  EXPECT_EQ(7, StatusCodeToInt(StatusCode::kFailedPrecondition));
  EXPECT_EQ(8, StatusCodeToInt(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(9, StatusCodeToInt(StatusCode::kInternal));
  EXPECT_EQ(10, StatusCodeToInt(StatusCode::kPermissionDenied));
  EXPECT_EQ(11, StatusCodeToInt(StatusCode::kCancelled));
  EXPECT_EQ(12, StatusCodeToInt(StatusCode::kUnimplemented));
}

TEST(StatusCodeTest, RoundTripsEveryCode) {
  for (int code = 0; code <= 12; ++code) {
    EXPECT_EQ(code, StatusCodeToInt(StatusCodeFromInt(code))) << code;
  }
}

TEST(StatusCodeTest, UnknownIntsDegradeToInternalNeverOk) {
  EXPECT_EQ(StatusCode::kInternal, StatusCodeFromInt(13));
  EXPECT_EQ(StatusCode::kInternal, StatusCodeFromInt(255));
  EXPECT_EQ(StatusCode::kInternal, StatusCodeFromInt(-1));
}

TEST(StatusCodeTest, FromCodeConstructor) {
  Status s = Status::FromCode(4, "backend down");
  EXPECT_EQ(StatusCode::kUnavailable, s.code());
  EXPECT_EQ("backend down", s.message());
  EXPECT_TRUE(Status::FromCode(0, "").ok());
}

TEST(StatusCodeTest, StatusWireRoundTrip) {
  for (int code = 1; code <= 12; ++code) {
    Status original = Status::FromCode(code, "msg " + std::to_string(code));
    net::WireWriter w;
    net::EncodeStatus(w, original);
    net::WireReader r(w.str());
    Status decoded = net::DecodeStatus(r);
    EXPECT_EQ(original.code(), decoded.code());
    EXPECT_EQ(original.message(), decoded.message());
  }
}

// --- frame layer ---

TEST(FrameTest, RoundTrip) {
  std::string bytes =
      net::EncodeFrame(net::FrameType::kSubqueryRequest, 77, "payload!");
  net::FrameDecoder decoder;
  decoder.Feed(bytes);
  net::Frame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(net::FrameType::kSubqueryRequest, frame.type);
  EXPECT_EQ(77u, frame.correlation);
  EXPECT_EQ("payload!", frame.payload);
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_TRUE(decoder.ok());
}

TEST(FrameTest, ByteAtATimeDelivery) {
  std::string bytes = net::EncodeFrame(net::FrameType::kPong, 5, "abc");
  net::FrameDecoder decoder;
  net::Frame frame;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(std::string_view(&bytes[i], 1));
    EXPECT_FALSE(decoder.Next(&frame)) << "frame complete early at " << i;
    EXPECT_TRUE(decoder.ok());
  }
  decoder.Feed(std::string_view(&bytes[bytes.size() - 1], 1));
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ("abc", frame.payload);
}

TEST(FrameTest, OversizedLengthPoisons) {
  net::WireWriter w;
  w.U32(net::kMaxFramePayload + 11);
  w.U8(net::kWireVersion);
  w.U8(1);
  w.U64(1);
  net::FrameDecoder decoder;
  decoder.Feed(w.str());
  net::Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_FALSE(decoder.ok());
  // Poisoned permanently: even a valid frame is not parsed afterwards.
  decoder.Feed(net::EncodeFrame(net::FrameType::kPing, 1, ""));
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_FALSE(decoder.ok());
}

TEST(FrameTest, VersionSkewPoisons) {
  std::string bytes = net::EncodeFrame(net::FrameType::kPing, 9, "x");
  bytes[4] = static_cast<char>(net::kWireVersion + 1);
  net::FrameDecoder decoder;
  decoder.Feed(bytes);
  net::Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_FALSE(decoder.ok());
}

TEST(FrameTest, PlannerGenerationBumpedWireVersion) {
  // The planner release extended the request/response envelopes
  // (plan hints, dim snapshots, epoch-probe dims) and added the
  // tree-merge/shuffle-map frames, so the frame version moved to 2. A
  // version-1 peer's frames must be rejected at the frame layer —
  // never field-misaligned.
  EXPECT_EQ(2, net::kWireVersion);
  std::string bytes = net::EncodeFrame(net::FrameType::kSubqueryRequest, 3,
                                       "payload from an old peer");
  bytes[4] = static_cast<char>(1);  // the pre-planner wire version
  net::FrameDecoder decoder;
  decoder.Feed(bytes);
  net::Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_FALSE(decoder.ok());
}

TEST(FrameTest, NewFrameTypesHaveNames) {
  EXPECT_EQ("tree_merge_request",
            net::FrameTypeName(net::FrameType::kTreeMergeRequest));
  EXPECT_EQ("tree_merge_response",
            net::FrameTypeName(net::FrameType::kTreeMergeResponse));
  EXPECT_EQ("shuffle_map_request",
            net::FrameTypeName(net::FrameType::kShuffleMapRequest));
  EXPECT_EQ("shuffle_map_response",
            net::FrameTypeName(net::FrameType::kShuffleMapResponse));
}

TEST(FrameTest, GarbageBytesPoison) {
  // 32 bytes of 0xFF: the length prefix alone exceeds the cap.
  net::FrameDecoder decoder;
  decoder.Feed(std::string(32, '\xff'));
  net::Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_FALSE(decoder.ok());
}

// --- randomized differential round-trips ---

Query RandomQuery(Rng& rng) {
  Query q;
  q.table = "t" + std::to_string(rng.NextBounded(1000));
  for (uint64_t i = 0, n = rng.NextBounded(4); i < n; ++i) {
    cubrick::FilterRange f;
    f.dimension = static_cast<int>(rng.NextBounded(6));
    f.lo = static_cast<uint32_t>(rng.Next());
    f.hi = static_cast<uint32_t>(rng.Next());
    q.filters.push_back(f);
  }
  for (uint64_t i = 0, n = rng.NextBounded(3); i < n; ++i) {
    cubrick::FilterIn f;
    f.dimension = static_cast<int>(rng.NextBounded(6));
    for (uint64_t j = 0, m = rng.NextBounded(5); j < m; ++j) {
      f.values.push_back(static_cast<uint32_t>(rng.Next()));
    }
    q.in_filters.push_back(f);
  }
  for (uint64_t i = 0, n = rng.NextBounded(4); i < n; ++i) {
    q.group_by.push_back(static_cast<int>(rng.NextBounded(6)));
  }
  for (uint64_t i = 0, n = rng.NextBounded(3); i < n; ++i) {
    cubrick::Join join;
    join.fact_dimension = static_cast<int>(rng.NextBounded(6));
    join.dimension_table = "dim" + std::to_string(rng.NextBounded(50));
    join.attribute = static_cast<int>(rng.NextBounded(4));
    q.joins.push_back(join);
    if (rng.NextBool(0.5)) {
      q.group_by_joins.push_back(static_cast<int>(i));
    }
    if (rng.NextBool(0.3)) {
      cubrick::JoinFilter jf;
      jf.join = static_cast<int>(i);
      jf.lo = static_cast<uint32_t>(rng.Next());
      jf.hi = static_cast<uint32_t>(rng.Next());
      q.join_filters.push_back(jf);
    }
  }
  for (uint64_t i = 0, n = 1 + rng.NextBounded(3); i < n; ++i) {
    cubrick::Aggregation agg;
    agg.metric = static_cast<int>(rng.NextBounded(4));
    agg.op = static_cast<cubrick::AggOp>(rng.NextBounded(5));
    q.aggregations.push_back(agg);
  }
  q.order_by = static_cast<int>(rng.NextBounded(q.aggregations.size() + 1)) - 1;
  q.descending = rng.NextBool(0.5);
  q.limit = static_cast<uint32_t>(rng.NextBounded(100));
  q.deadline = static_cast<SimDuration>(rng.NextBounded(1000000));
  return q;
}

QueryResult RandomResult(Rng& rng, size_t num_aggs) {
  QueryResult result(num_aggs);
  for (uint64_t g = 0, n = rng.NextBounded(20); g < n; ++g) {
    QueryResult::GroupKey key;
    for (uint64_t k = 0, m = rng.NextBounded(4); k < m; ++k) {
      key.push_back(static_cast<uint32_t>(rng.Next()));
    }
    for (size_t a = 0; a < num_aggs; ++a) {
      cubrick::AggState state;
      // Accumulate a few raw values: sum/min/max land on non-trivial
      // doubles whose full mantissas must survive the trip.
      for (uint64_t v = 0, c = 1 + rng.NextBounded(5); v < c; ++v) {
        state.Add(rng.NextDouble() * 1e6 - 5e5);
      }
      result.AccumulateState(key, a, state);
    }
  }
  result.rows_scanned = static_cast<int64_t>(rng.NextBounded(1 << 20));
  result.bricks_scanned = static_cast<int64_t>(rng.NextBounded(1 << 10));
  result.bricks_pruned = static_cast<int64_t>(rng.NextBounded(1 << 10));
  return result;
}

cubrick::ReplicatedTable RandomReplicatedTable(Rng& rng) {
  const uint32_t key_cardinality = 1 + static_cast<uint32_t>(rng.NextBounded(64));
  std::vector<cubrick::Dimension> attrs;
  for (uint64_t a = 0, n = 1 + rng.NextBounded(3); a < n; ++a) {
    cubrick::Dimension d;
    d.name = "attr" + std::to_string(a);
    d.cardinality = 1 + static_cast<uint32_t>(rng.NextBounded(32));
    d.range_size = 1 + static_cast<uint32_t>(rng.NextBounded(8));
    attrs.push_back(d);
  }
  cubrick::ReplicatedTable table("dim" + std::to_string(rng.NextBounded(50)),
                                 key_cardinality, attrs);
  for (uint32_t k = 0; k < key_cardinality; ++k) {
    if (rng.NextBool(0.3)) continue;  // unset keys must survive the trip
    cubrick::DimensionEntry entry;
    entry.key = k;
    for (const cubrick::Dimension& d : attrs) {
      entry.attributes.push_back(
          static_cast<uint32_t>(rng.NextBounded(d.cardinality)));
    }
    table.Set(entry);
  }
  table.set_epoch(rng.Next());
  return table;
}

// Re-encoding the decoded value must reproduce the original bytes.
template <typename T, typename Encode, typename Decode>
void ExpectByteStableRoundTrip(const T& value, Encode encode, Decode decode,
                               const char* what) {
  std::string bytes = encode(value);
  auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.ok()) << what << ": " << decoded.status().ToString();
  EXPECT_EQ(bytes, encode(*decoded)) << what << ": re-encode mismatch";

  // Every truncation must fail, never misdecode. (Boundaries sampled:
  // every prefix would be O(n^2) over the suite.)
  for (size_t cut : {size_t{0}, bytes.size() / 3, bytes.size() / 2,
                     bytes.size() - 1}) {
    if (cut >= bytes.size()) continue;
    auto truncated = decode(bytes.substr(0, cut));
    EXPECT_FALSE(truncated.ok()) << what << ": truncation at " << cut;
  }
  // Trailing garbage must fail too (fixed-shape payloads).
  auto padded = decode(bytes + std::string("\x01", 1));
  EXPECT_FALSE(padded.ok()) << what << ": trailing garbage accepted";
}

TEST(WireDifferentialTest, QueryRoundTripsByteStable) {
  Rng rng(0xC0DEC);
  for (int i = 0; i < 200; ++i) {
    Query q = RandomQuery(rng);
    ExpectByteStableRoundTrip(
        q,
        [](const Query& v) {
          net::WireWriter w;
          cubrick::wire::EncodeQuery(w, v);
          return std::move(w).str();
        },
        [](std::string_view bytes) -> Result<Query> {
          net::WireReader r(bytes);
          auto decoded = cubrick::wire::DecodeQuery(r);
          if (decoded.ok() && !r.exhausted()) {
            return Status::InvalidArgument("trailing bytes");
          }
          return decoded;
        },
        "Query");
  }
}

TEST(WireDifferentialTest, QueryResultRoundTripsByteStable) {
  Rng rng(0xAB5);
  for (int i = 0; i < 200; ++i) {
    size_t num_aggs = 1 + rng.NextBounded(3);
    QueryResult result = RandomResult(rng, num_aggs);
    ExpectByteStableRoundTrip(
        result,
        [](const QueryResult& v) {
          net::WireWriter w;
          cubrick::wire::EncodeQueryResult(w, v);
          return std::move(w).str();
        },
        [](std::string_view bytes) -> Result<QueryResult> {
          net::WireReader r(bytes);
          auto decoded = cubrick::wire::DecodeQueryResult(r);
          if (decoded.ok() && !r.exhausted()) {
            return Status::InvalidArgument("trailing bytes");
          }
          return decoded;
        },
        "QueryResult");
  }
}

TEST(WireDifferentialTest, SubqueryEnvelopeRoundTripsByteStable) {
  Rng rng(0x5B5);
  for (int i = 0; i < 100; ++i) {
    cubrick::wire::SubqueryEnvelope envelope;
    envelope.query = RandomQuery(rng);
    envelope.partition = static_cast<uint32_t>(rng.NextBounded(64));
    envelope.cache_policy =
        static_cast<cache::CachePolicy>(rng.NextBounded(4));
    envelope.scan_path = static_cast<exec::ScanPath>(rng.NextBounded(2));
    if (rng.NextBool(0.5)) envelope.fingerprint = "fp" + std::to_string(i);
    envelope.remaining_budget =
        static_cast<SimDuration>(rng.NextBounded(10000000));
    for (uint64_t d = 0, n = rng.NextBounded(3); d < n; ++d) {
      envelope.dims.push_back(RandomReplicatedTable(rng));
    }
    std::string bytes = cubrick::wire::EncodeSubqueryRequest(envelope);
    auto decoded = cubrick::wire::DecodeSubqueryRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    // The envelope zeroes the query's absolute deadline (budget travels
    // separately), so re-encoding reproduces the bytes exactly.
    EXPECT_EQ(0, decoded->query.deadline);
    EXPECT_EQ(envelope.remaining_budget, decoded->remaining_budget);
    EXPECT_EQ(bytes, cubrick::wire::EncodeSubqueryRequest(*decoded));
    EXPECT_FALSE(
        cubrick::wire::DecodeSubqueryRequest(bytes.substr(0, bytes.size() / 2))
            .ok());
    EXPECT_FALSE(cubrick::wire::DecodeSubqueryRequest(bytes + "x").ok());
  }
}

TEST(WireDifferentialTest, PartialResultRoundTripsByteStable) {
  Rng rng(0x9A77);
  for (int i = 0; i < 100; ++i) {
    cubrick::PartialResult partial;
    partial.result = RandomResult(rng, 2);
    partial.forward_hops = static_cast<int>(rng.NextBounded(4));
    partial.epoch = rng.Next();
    partial.cache_hit = rng.NextBool(0.5);
    std::string bytes = cubrick::wire::EncodeSubqueryResponse(partial);
    auto decoded = cubrick::wire::DecodeSubqueryResponse(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(bytes, cubrick::wire::EncodeSubqueryResponse(*decoded));
    EXPECT_FALSE(
        cubrick::wire::DecodeSubqueryResponse(bytes.substr(0, bytes.size() - 1))
            .ok());
  }
}

TEST(WireDifferentialTest, CoordinateEnvelopesRoundTripByteStable) {
  Rng rng(0xC123);
  for (int i = 0; i < 100; ++i) {
    cubrick::wire::CoordinateEnvelope envelope;
    envelope.query = RandomQuery(rng);
    envelope.cache_policy = static_cast<cache::CachePolicy>(rng.NextBounded(4));
    envelope.scan_path = static_cast<exec::ScanPath>(rng.NextBounded(2));
    envelope.remaining_budget =
        static_cast<SimDuration>(rng.NextBounded(10000000));
    envelope.dispatch_time = static_cast<SimTime>(rng.NextBounded(1u << 30));
    envelope.join_strategy =
        static_cast<cubrick::JoinStrategy>(rng.NextBounded(4));
    envelope.merge_fanin = static_cast<int>(rng.NextBounded(16));
    std::string bytes = cubrick::wire::EncodeCoordinateRequest(envelope);
    auto decoded = cubrick::wire::DecodeCoordinateRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(envelope.join_strategy, decoded->join_strategy);
    EXPECT_EQ(envelope.merge_fanin, decoded->merge_fanin);
    EXPECT_EQ(bytes, cubrick::wire::EncodeCoordinateRequest(*decoded));

    cubrick::DistributedOutcome outcome;
    outcome.status = rng.NextBool(0.3)
                         ? Status::Unavailable("server 3 failed")
                         : Status::Ok();
    outcome.result = RandomResult(rng, 2);
    outcome.latency = static_cast<SimDuration>(rng.NextBounded(1u << 30));
    outcome.fanout = static_cast<int>(rng.NextBounded(40));
    outcome.num_partitions = static_cast<uint32_t>(rng.NextBounded(64));
    for (uint64_t p = 0; p < outcome.num_partitions; ++p) {
      outcome.partition_epochs.push_back(rng.Next());
    }
    for (uint64_t d = 0, n = rng.NextBounded(3); d < n; ++d) {
      outcome.dim_epochs.push_back(rng.Next());
    }
    outcome.strategy = static_cast<cubrick::JoinStrategy>(
        1 + rng.NextBounded(3));  // executed plans are never kAuto
    outcome.merge_fanin = static_cast<int>(rng.NextBounded(16));
    outcome.tree_depth = static_cast<int>(rng.NextBounded(6));
    outcome.failed_server = rng.NextBool(0.3)
                                ? static_cast<cluster::ServerId>(rng.Next())
                                : cluster::kInvalidServer;
    outcome.subquery_retries = static_cast<int>(rng.NextBounded(10));
    outcome.hedges_fired = static_cast<int>(rng.NextBounded(10));
    outcome.hedge_wins = static_cast<int>(rng.NextBounded(10));
    outcome.cache_hits = static_cast<int>(rng.NextBounded(10));
    outcome.cache_stale_serves = static_cast<int>(rng.NextBounded(10));
    std::string rbytes = cubrick::wire::EncodeCoordinateResponse(outcome);
    auto rdecoded = cubrick::wire::DecodeCoordinateResponse(rbytes);
    ASSERT_TRUE(rdecoded.ok());
    EXPECT_EQ(rbytes, cubrick::wire::EncodeCoordinateResponse(*rdecoded));
    EXPECT_FALSE(cubrick::wire::DecodeCoordinateResponse(
                     rbytes.substr(0, rbytes.size() / 2))
                     .ok());
  }
}

TEST(WireDifferentialTest, EpochMessagesRoundTrip) {
  Rng rng(0xE9);
  for (int i = 0; i < 50; ++i) {
    cubrick::wire::EpochProbe probe;
    probe.table = "table" + std::to_string(rng.Next());
    for (uint64_t d = 0, n = rng.NextBounded(4); d < n; ++d) {
      probe.dims.push_back("dim" + std::to_string(rng.NextBounded(8)));
    }
    std::string bytes = cubrick::wire::EncodeEpochRequest(probe);
    auto decoded = cubrick::wire::DecodeEpochRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(probe.table, decoded->table);
    EXPECT_EQ(probe.dims, decoded->dims);

    std::vector<uint64_t> epochs;
    for (uint64_t p = 0, n = rng.NextBounded(64); p < n; ++p) {
      epochs.push_back(rng.Next());
    }
    std::string ebytes = cubrick::wire::EncodeEpochResponse(epochs);
    auto edecoded = cubrick::wire::DecodeEpochResponse(ebytes);
    ASSERT_TRUE(edecoded.ok());
    EXPECT_EQ(epochs, *edecoded);
    EXPECT_FALSE(cubrick::wire::DecodeEpochResponse(ebytes + "zz").ok());
  }
}

TEST(WireDifferentialTest, ReplicatedTableRoundTripsByteStable) {
  Rng rng(0xD1117);
  for (int i = 0; i < 50; ++i) {
    cubrick::ReplicatedTable table = RandomReplicatedTable(rng);
    ExpectByteStableRoundTrip(
        table,
        [](const cubrick::ReplicatedTable& v) {
          net::WireWriter w;
          cubrick::wire::EncodeReplicatedTable(w, v);
          return std::move(w).str();
        },
        [](std::string_view bytes) -> Result<cubrick::ReplicatedTable> {
          net::WireReader r(bytes);
          auto decoded = cubrick::wire::DecodeReplicatedTable(r);
          if (decoded.ok() && !r.exhausted()) {
            return Status::InvalidArgument("trailing bytes");
          }
          return decoded;
        },
        "ReplicatedTable");
    // The snapshot must probe identically to the original: epoch,
    // every set key and every unset key.
    net::WireWriter w;
    cubrick::wire::EncodeReplicatedTable(w, table);
    net::WireReader r(w.str());
    auto decoded = cubrick::wire::DecodeReplicatedTable(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(table.epoch(), decoded->epoch());
    EXPECT_EQ(table.num_entries(), decoded->num_entries());
    for (uint32_t k = 0; k < table.key_cardinality(); ++k) {
      for (int a = 0; a < static_cast<int>(table.attributes().size()); ++a) {
        EXPECT_EQ(table.Attribute(k, a), decoded->Attribute(k, a));
      }
    }
  }
}

TEST(WireDifferentialTest, TreeMergeEnvelopesRoundTripByteStable) {
  Rng rng(0x7EE);
  for (int i = 0; i < 100; ++i) {
    cubrick::wire::TreeMergeEnvelope envelope;
    envelope.query = RandomQuery(rng);
    const uint64_t n = 2 + rng.NextBounded(30);
    for (uint64_t p = 0; p < n; ++p) {
      envelope.partitions.push_back(static_cast<uint32_t>(rng.NextBounded(64)));
      envelope.servers.push_back(static_cast<uint32_t>(rng.NextBounded(16)));
    }
    envelope.fanin = 2 + static_cast<int>(rng.NextBounded(14));
    envelope.cache_policy = static_cast<cache::CachePolicy>(rng.NextBounded(4));
    envelope.scan_path = static_cast<exec::ScanPath>(rng.NextBounded(2));
    if (rng.NextBool(0.5)) envelope.fingerprint = "fp" + std::to_string(i);
    envelope.remaining_budget =
        static_cast<SimDuration>(rng.NextBounded(10000000));
    if (rng.NextBool(0.3)) {
      envelope.dims.push_back(RandomReplicatedTable(rng));
    }
    std::string bytes = cubrick::wire::EncodeTreeMergeRequest(envelope);
    auto decoded = cubrick::wire::DecodeTreeMergeRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(0, decoded->query.deadline);
    EXPECT_EQ(envelope.partitions, decoded->partitions);
    EXPECT_EQ(envelope.servers, decoded->servers);
    EXPECT_EQ(envelope.fanin, decoded->fanin);
    EXPECT_EQ(bytes, cubrick::wire::EncodeTreeMergeRequest(*decoded));
    EXPECT_FALSE(
        cubrick::wire::DecodeTreeMergeRequest(bytes.substr(0, bytes.size() / 2))
            .ok());
    EXPECT_FALSE(cubrick::wire::DecodeTreeMergeRequest(bytes + "x").ok());

    cubrick::wire::TreeMergeResult merged;
    merged.result = RandomResult(rng, 2);
    for (uint64_t p = 0; p < n; ++p) {
      merged.epochs.push_back(rng.Next());
      merged.forward_hops.push_back(static_cast<int>(rng.NextBounded(4)));
    }
    std::string rbytes = cubrick::wire::EncodeTreeMergeResponse(merged);
    auto rdecoded = cubrick::wire::DecodeTreeMergeResponse(rbytes);
    ASSERT_TRUE(rdecoded.ok());
    EXPECT_EQ(merged.epochs, rdecoded->epochs);
    EXPECT_EQ(merged.forward_hops, rdecoded->forward_hops);
    EXPECT_EQ(rbytes, cubrick::wire::EncodeTreeMergeResponse(*rdecoded));
    EXPECT_FALSE(cubrick::wire::DecodeTreeMergeResponse(
                     rbytes.substr(0, rbytes.size() - 1))
                     .ok());
  }
}

TEST(WireDifferentialTest, TreeMergeRequestRejectsMalformedShapes) {
  Rng rng(0x7EF);
  cubrick::wire::TreeMergeEnvelope envelope;
  envelope.query = RandomQuery(rng);
  envelope.partitions = {0, 1, 2};
  envelope.servers = {0, 1, 0};
  envelope.fanin = 2;
  std::string good = cubrick::wire::EncodeTreeMergeRequest(envelope);
  ASSERT_TRUE(cubrick::wire::DecodeTreeMergeRequest(good).ok());

  // A fanin < 2 cannot describe a tree; the decoder must reject it
  // rather than divide by a degenerate chunk width.
  cubrick::wire::TreeMergeEnvelope flat = envelope;
  flat.fanin = 1;
  EXPECT_FALSE(
      cubrick::wire::DecodeTreeMergeRequest(
          cubrick::wire::EncodeTreeMergeRequest(flat))
          .ok());

  // Mismatched partition/server arrays must be rejected.
  cubrick::wire::TreeMergeEnvelope skewed = envelope;
  skewed.servers.pop_back();
  EXPECT_FALSE(
      cubrick::wire::DecodeTreeMergeRequest(
          cubrick::wire::EncodeTreeMergeRequest(skewed))
          .ok());
}

TEST(WireDifferentialTest, ShuffleMapEnvelopesRoundTripByteStable) {
  Rng rng(0x5FF);
  for (int i = 0; i < 100; ++i) {
    cubrick::wire::ShuffleMapEnvelope envelope;
    envelope.query = RandomQuery(rng);
    envelope.bucket = RandomResult(rng, envelope.query.aggregations.size());
    std::string bytes = cubrick::wire::EncodeShuffleMapRequest(envelope);
    auto decoded = cubrick::wire::DecodeShuffleMapRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(0, decoded->query.deadline);
    EXPECT_EQ(envelope.bucket.num_groups(), decoded->bucket.num_groups());
    EXPECT_EQ(bytes, cubrick::wire::EncodeShuffleMapRequest(*decoded));
    EXPECT_FALSE(cubrick::wire::DecodeShuffleMapRequest(
                     bytes.substr(0, bytes.size() / 2))
                     .ok());
    EXPECT_FALSE(cubrick::wire::DecodeShuffleMapRequest(bytes + "x").ok());

    QueryResult mapped = RandomResult(rng, envelope.query.aggregations.size());
    std::string rbytes = cubrick::wire::EncodeShuffleMapResponse(mapped);
    auto rdecoded = cubrick::wire::DecodeShuffleMapResponse(rbytes);
    ASSERT_TRUE(rdecoded.ok());
    EXPECT_EQ(rbytes, cubrick::wire::EncodeShuffleMapResponse(*rdecoded));
    EXPECT_FALSE(cubrick::wire::DecodeShuffleMapResponse(
                     rbytes.substr(0, rbytes.size() - 1))
                     .ok());
  }
}

TEST(WireDifferentialTest, ClientMessagesRoundTripByteStable) {
  Rng rng(0xC11E);
  for (int i = 0; i < 100; ++i) {
    cubrick::QueryRequest request;
    request.query = RandomQuery(rng);
    request.preferred_region =
        static_cast<cluster::RegionId>(rng.NextBounded(8));
    request.deadline = static_cast<SimDuration>(rng.NextBounded(1u << 30));
    request.tracing = rng.NextBool(0.5);
    request.cache_policy = static_cast<cache::CachePolicy>(rng.NextBounded(4));
    request.tenant_id = rng.NextBool(0.5) ? "tenant" + std::to_string(i) : "";
    request.priority = static_cast<admit::Priority>(rng.NextBounded(3));
    request.scan_path = static_cast<exec::ScanPath>(rng.NextBounded(2));
    request.join_strategy =
        static_cast<cubrick::JoinStrategy>(rng.NextBounded(4));
    request.merge_fanin = static_cast<int>(rng.NextBounded(16));
    std::string bytes = cubrick::wire::EncodeClientQuery(request);
    auto decoded = cubrick::wire::DecodeClientQuery(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(request.join_strategy, decoded->join_strategy);
    EXPECT_EQ(request.merge_fanin, decoded->merge_fanin);
    // The client envelope keeps the absolute deadline: the node proxy is
    // the budget's origin.
    EXPECT_EQ(request.deadline, decoded->deadline);
    EXPECT_EQ(request.query.deadline, decoded->query.deadline);
    EXPECT_EQ(bytes, cubrick::wire::EncodeClientQuery(*decoded));

    cubrick::wire::ClientRowsEnvelope rows;
    for (uint64_t r = 0, n = rng.NextBounded(20); r < n; ++r) {
      cubrick::ResultRow row;
      for (uint64_t k = 0, m = rng.NextBounded(4); k < m; ++k) {
        row.key.push_back(static_cast<uint32_t>(rng.Next()));
      }
      for (uint64_t v = 0, m = 1 + rng.NextBounded(3); v < m; ++v) {
        row.values.push_back(rng.NextDouble() * 1e9 - 5e8);
      }
      rows.rows.push_back(std::move(row));
    }
    rows.region = static_cast<cluster::RegionId>(rng.NextBounded(8));
    rows.attempts = static_cast<int>(rng.NextBounded(5));
    rows.fanout = static_cast<int>(rng.NextBounded(40));
    rows.latency = static_cast<SimDuration>(rng.NextBounded(1u << 30));
    std::string rbytes = cubrick::wire::EncodeClientRows(rows);
    auto rdecoded = cubrick::wire::DecodeClientRows(rbytes);
    ASSERT_TRUE(rdecoded.ok());
    EXPECT_EQ(rbytes, cubrick::wire::EncodeClientRows(*rdecoded));
    EXPECT_FALSE(
        cubrick::wire::DecodeClientRows(rbytes.substr(0, rbytes.size() / 3))
            .ok());
  }
}

TEST(WireDifferentialTest, GarbagePayloadsRejected) {
  Rng rng(0xBAD);
  for (int i = 0; i < 200; ++i) {
    std::string garbage;
    for (uint64_t n = rng.NextBounded(64); garbage.size() < n;) {
      garbage.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    // None of these may crash; nearly all must reject. (A tiny garbage
    // payload can decode as a degenerate-but-valid message; the
    // re-encode byte-compare in the suites above is what catches any
    // such false accept drifting from the canonical encoding.)
    (void)cubrick::wire::DecodeSubqueryRequest(garbage);
    (void)cubrick::wire::DecodeSubqueryResponse(garbage);
    (void)cubrick::wire::DecodeCoordinateRequest(garbage);
    (void)cubrick::wire::DecodeCoordinateResponse(garbage);
    (void)cubrick::wire::DecodeEpochRequest(garbage);
    (void)cubrick::wire::DecodeEpochResponse(garbage);
    (void)cubrick::wire::DecodeClientQuery(garbage);
    (void)cubrick::wire::DecodeClientRows(garbage);
  }
}

// --- telemetry blocks (net/telemetry.h): version-skew hardening ---
//
// Telemetry blocks are advisory riders: every malformed block must
// yield a *stable* Status the caller can count and drop — never a
// crash, never a silent misdecode, and never a failure of the
// enclosing request (that part is enforced in node_telemetry_test).

std::vector<obs::SpanRecord> SampleSpans() {
  obs::TraceSink sink;
  obs::TraceContext root = sink.StartTrace("partition ads/p3", 100);
  root.Annotate("server", "s1");
  root.Annotate("rows_scanned", "1234");
  obs::TraceContext morsel = root.Child("morsel 0", 110);
  morsel.End(150);
  root.End(200);
  return sink.Spans(root.trace);
}

TEST(TelemetryCodecTest, TraceContextRoundTrip) {
  net::TraceContextBlock ctx;
  ctx.want_spans = true;
  ctx.trace_id = 0xDEADBEEFCAFEF00Dull;
  ctx.span_id = 42;
  ctx.origin = "proxy";
  const std::string block = net::EncodeTraceContext(ctx);
  ASSERT_FALSE(block.empty());

  net::TraceContextBlock decoded;
  ASSERT_TRUE(net::DecodeTraceContext(block, &decoded).ok());
  EXPECT_TRUE(decoded.want_spans);
  EXPECT_EQ(ctx.trace_id, decoded.trace_id);
  EXPECT_EQ(ctx.span_id, decoded.span_id);
  EXPECT_EQ("proxy", decoded.origin);

  // Disabled context encodes to the empty block; the empty block
  // decodes as "no telemetry", not as an error.
  EXPECT_TRUE(net::EncodeTraceContext({}).empty());
  ASSERT_TRUE(net::DecodeTraceContext("", &decoded).ok());
  EXPECT_FALSE(decoded.want_spans);
}

TEST(TelemetryCodecTest, SpanBatchRoundTrip) {
  const std::vector<obs::SpanRecord> spans = SampleSpans();
  ASSERT_GE(spans.size(), 2u);
  const std::string block = net::EncodeSpanBatch(spans);

  std::vector<obs::SpanRecord> decoded;
  ASSERT_TRUE(net::DecodeSpanBatch(block, &decoded).ok());
  ASSERT_EQ(spans.size(), decoded.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, decoded[i].id);
    EXPECT_EQ(spans[i].parent, decoded[i].parent);
    EXPECT_EQ(spans[i].name, decoded[i].name);
    EXPECT_EQ(spans[i].start, decoded[i].start);
    EXPECT_EQ(spans[i].end, decoded[i].end);
    EXPECT_EQ(spans[i].tags, decoded[i].tags);
  }
  // Re-encode is byte-stable.
  EXPECT_EQ(block, net::EncodeSpanBatch(decoded));
  // Empty batch <-> empty block.
  EXPECT_TRUE(net::EncodeSpanBatch({}).empty());
  ASSERT_TRUE(net::DecodeSpanBatch("", &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(TelemetryCodecTest, UnknownVersionRejectedAsVersionSkew) {
  std::string trace_block = net::EncodeTraceContext(
      {/*want_spans=*/true, /*trace_id=*/1, /*span_id=*/2, "proxy"});
  trace_block[0] = static_cast<char>(net::kTelemetryVersion + 1);
  net::TraceContextBlock ctx;
  Status status = net::DecodeTraceContext(trace_block, &ctx);
  EXPECT_EQ(StatusCode::kUnimplemented, status.code());
  EXPECT_EQ("version", net::TelemetryDecodeErrorKind(status));
  EXPECT_FALSE(ctx.want_spans) << "a rejected block must leave no state";

  std::string span_block = net::EncodeSpanBatch(SampleSpans());
  span_block[0] = static_cast<char>(0xFF);
  std::vector<obs::SpanRecord> spans;
  status = net::DecodeSpanBatch(span_block, &spans);
  EXPECT_EQ(StatusCode::kUnimplemented, status.code());
  EXPECT_EQ("version", net::TelemetryDecodeErrorKind(status));
  EXPECT_TRUE(spans.empty());
}

TEST(TelemetryCodecTest, TruncationAtEveryByteYieldsStableStatus) {
  const std::string trace_block = net::EncodeTraceContext(
      {/*want_spans=*/true, /*trace_id=*/7, /*span_id=*/9, "proxy"});
  // Every strict nonempty prefix must fail (the empty block is the
  // legitimate "no telemetry" encoding, not a truncation).
  for (size_t cut = 1; cut < trace_block.size(); ++cut) {
    net::TraceContextBlock ctx;
    Status status =
        net::DecodeTraceContext(trace_block.substr(0, cut), &ctx);
    EXPECT_EQ(StatusCode::kInvalidArgument, status.code()) << "cut " << cut;
    EXPECT_EQ("truncated", net::TelemetryDecodeErrorKind(status));
    EXPECT_FALSE(ctx.want_spans);
  }

  const std::string span_block = net::EncodeSpanBatch(SampleSpans());
  for (size_t cut = 1; cut < span_block.size(); ++cut) {
    std::vector<obs::SpanRecord> spans;
    Status status = net::DecodeSpanBatch(span_block.substr(0, cut), &spans);
    EXPECT_FALSE(status.ok()) << "cut " << cut;
    EXPECT_TRUE(spans.empty()) << "cut " << cut;
  }

  // Trailing garbage is rejected too: exhausted() means *exact*.
  std::vector<obs::SpanRecord> spans;
  EXPECT_FALSE(net::DecodeSpanBatch(span_block + "x", &spans).ok());
  net::TraceContextBlock ctx;
  EXPECT_FALSE(net::DecodeTraceContext(trace_block + "x", &ctx).ok());
}

TEST(TelemetryCodecTest, ForgedCountsRejectedBeforeAllocation) {
  // A forged span count larger than the cap fails kResourceExhausted.
  net::WireWriter oversize;
  oversize.U8(net::kTelemetryVersion);
  oversize.U32(net::kMaxSpansPerBatch + 1);
  std::vector<obs::SpanRecord> spans;
  Status status = net::DecodeSpanBatch(std::move(oversize).str(), &spans);
  EXPECT_EQ(StatusCode::kResourceExhausted, status.code());
  EXPECT_EQ("oversize", net::TelemetryDecodeErrorKind(status));

  // A count under the cap but far beyond the payload's bytes fails as
  // truncated *before* any per-span allocation happens.
  net::WireWriter forged;
  forged.U8(net::kTelemetryVersion);
  forged.U32(net::kMaxSpansPerBatch);
  status = net::DecodeSpanBatch(std::move(forged).str(), &spans);
  EXPECT_EQ(StatusCode::kInvalidArgument, status.code());

  // A forged per-span tag count beyond kMaxTagsPerSpan is oversize.
  net::WireWriter tags;
  tags.U8(net::kTelemetryVersion);
  tags.U32(1);
  tags.U64(1);                           // id
  tags.U64(0);                           // parent
  tags.Str("partition ads/p0");          // name
  tags.I64(0);                           // start
  tags.I64(1);                           // end
  tags.U32(net::kMaxTagsPerSpan + 1);    // forged tag count
  status = net::DecodeSpanBatch(std::move(tags).str(), &spans);
  EXPECT_EQ(StatusCode::kResourceExhausted, status.code());
  EXPECT_EQ("oversize", net::TelemetryDecodeErrorKind(status));
}

TEST(TelemetryCodecTest, RandomGarbageNeverCrashesOrMisdecodes) {
  Rng rng(0x7E1E);
  const std::string valid = net::EncodeSpanBatch(SampleSpans());
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    for (uint64_t n = rng.NextBounded(96); garbage.size() < n;) {
      garbage.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    net::TraceContextBlock ctx;
    (void)net::DecodeTraceContext(garbage, &ctx);
    std::vector<obs::SpanRecord> spans;
    (void)net::DecodeSpanBatch(garbage, &spans);

    // Bit-flip fuzz over a valid block: decode either rejects cleanly
    // or round-trips to a canonical re-encoding — never crashes.
    std::string flipped = valid;
    flipped[rng.NextBounded(flipped.size())] ^=
        static_cast<char>(1u << rng.NextBounded(8));
    if (net::DecodeSpanBatch(flipped, &spans).ok()) {
      EXPECT_EQ(flipped, net::EncodeSpanBatch(spans));
    } else {
      EXPECT_TRUE(spans.empty());
    }
  }
}

TEST(TelemetryCodecTest, DecodeCountersClassifyAndExport) {
  obs::MetricsRegistry registry;
  net::TelemetryDecodeCounters counters(&registry);

  counters.Bump(Status::Unimplemented("v2"));
  counters.Bump(Status::InvalidArgument("short"));
  counters.Bump(Status::InvalidArgument("short"));
  counters.Bump(Status::ResourceExhausted("big"));
  counters.Bump(Status::Ok());  // never counted

  const std::string exported = registry.ExportPrometheus();
  EXPECT_NE(std::string::npos,
            exported.find(
                "scalewall_net_decode_errors_total{kind=\"version\"} 1"));
  EXPECT_NE(std::string::npos,
            exported.find(
                "scalewall_net_decode_errors_total{kind=\"truncated\"} 2"));
  EXPECT_NE(std::string::npos,
            exported.find(
                "scalewall_net_decode_errors_total{kind=\"oversize\"} 1"));

  // Registry-less counters are inert, not unsafe.
  net::TelemetryDecodeCounters orphan(nullptr);
  orphan.Bump(Status::InvalidArgument("short"));
}

}  // namespace
}  // namespace scalewall
