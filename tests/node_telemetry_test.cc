// The cross-process telemetry plane, end to end.
//
// 1. Trace stitching is transport-invariant: the SAME ServerCore /
//    ProxyCore protocol logic runs once over a SimTransport network and
//    once over a real epoll loopback cluster, and the same-seed query
//    must export a byte-identical canonical trace tree and canonical
//    QueryProfile from both — the wire span batches carry exactly what
//    the in-process path records.
// 2. The HTTP admin plane: /metrics, /healthz and /traces (and the
//    proxy's /slowlog) served from the node's own event loop, checked
//    with a raw HTTP/1.0 client.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cubrick/sql.h"
#include "net/sim_transport.h"
#include "node/dataset.h"
#include "node/node.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "sim/simulation.h"

namespace scalewall {
namespace {

cubrick::Query TestQuery() {
  auto query = cubrick::ParseQuery(
      "SELECT region, SUM(spend), MAX(clicks) FROM ads "
      "WHERE day BETWEEN 2 AND 25 GROUP BY region "
      "ORDER BY SUM(spend) DESC LIMIT 5",
      node::DatasetSchema());
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return *query;
}

// The sim half of the differential: cores wired to named SimTransport
// nodes, client query injected through the client node's own Call.
struct SimCluster {
  sim::Simulation sim{42};
  net::SimNetwork network{&sim};
  obs::MetricsRegistry metrics;
  node::ServerCore s0;
  node::ServerCore s1;
  node::ProxyCore proxy;

  static node::NodeOptions ServerOptions(uint32_t id) {
    node::NodeOptions options;
    options.server_id = id;
    options.num_servers = 2;
    return options;
  }
  static node::NodeOptions ProxyOptions() {
    node::NodeOptions options;
    options.num_servers = 2;
    return options;
  }

  SimCluster()
      : s0(ServerOptions(0), &metrics),
        s1(ServerOptions(1), &metrics),
        proxy(ProxyOptions(), network.Node("proxy"), &metrics) {
    EXPECT_TRUE(s0.LoadPartitions().ok());
    EXPECT_TRUE(s1.LoadPartitions().ok());
    network.Node("s0")->SetHandler(
        [this](const net::Message& m, const net::CallSideband&) {
          return s0.Handle(m);
        });
    network.Node("s1")->SetHandler(
        [this](const net::Message& m, const net::CallSideband&) {
          return s1.Handle(m);
        });
    network.Node("proxy")->SetHandler(
        [this](const net::Message& m, const net::CallSideband&) {
          return proxy.Handle(m);
        });
  }

  Result<cubrick::wire::ClientRowsEnvelope> Query(
      const cubrick::QueryRequest& request) {
    return node::SubmitClientQuery(*network.Node("client"), "proxy", request);
  }
};

// The real-socket half: one ProxyNode + two ServerNodes on loopback.
struct EpollCluster {
  obs::MetricsRegistry metrics;
  node::ServerNode s0;
  node::ServerNode s1;
  node::ProxyNode* proxy = nullptr;
  std::unique_ptr<node::ProxyNode> proxy_storage;
  net::EpollTransport client;

  explicit EpollCluster(node::NodeOptions proxy_options = {})
      : s0(SimCluster::ServerOptions(0)), s1(SimCluster::ServerOptions(1)) {
    EXPECT_TRUE(s0.Start().ok());
    EXPECT_TRUE(s1.Start().ok());
    proxy_options.num_servers = 2;
    std::map<std::string, std::string> peers = {
        {"s0", "127.0.0.1:" + std::to_string(s0.port())},
        {"s1", "127.0.0.1:" + std::to_string(s1.port())},
    };
    proxy_storage = std::make_unique<node::ProxyNode>(proxy_options, peers,
                                                      &metrics);
    proxy = proxy_storage.get();
    EXPECT_TRUE(proxy->Start().ok());
    EXPECT_TRUE(client.Start());
    client.MapPeer("proxy", "127.0.0.1:" + std::to_string(proxy->port()));
  }

  ~EpollCluster() {
    client.Stop();
    if (proxy != nullptr) proxy->Stop();
    s0.Stop();
    s1.Stop();
  }

  Result<cubrick::wire::ClientRowsEnvelope> Query(
      const cubrick::QueryRequest& request) {
    return node::SubmitClientQuery(client, "proxy", request);
  }
};

TEST(NodeTelemetryTest, StitchedTraceIsByteIdenticalAcrossTransports) {
  cubrick::QueryRequest request(TestQuery());
  request.profile = true;

  SimCluster sim_cluster;
  auto sim_rows = sim_cluster.Query(request);
  ASSERT_TRUE(sim_rows.ok()) << sim_rows.status().ToString();

  EpollCluster epoll_cluster;
  auto socket_rows = epoll_cluster.Query(request);
  ASSERT_TRUE(socket_rows.ok()) << socket_rows.status().ToString();

  // Same rows (the existing loopback suite covers this in depth).
  ASSERT_EQ(sim_rows->rows.size(), socket_rows->rows.size());

  // One stitched trace per side...
  obs::TraceSink& sim_sink = sim_cluster.proxy.trace_sink();
  obs::TraceSink& socket_sink = epoll_cluster.proxy->core().trace_sink();
  const uint64_t sim_trace = sim_sink.LastTraceId();
  const uint64_t socket_trace = socket_sink.LastTraceId();
  ASSERT_NE(0u, sim_trace);
  ASSERT_NE(0u, socket_trace);

  // ...containing the REMOTE partition spans grafted under the proxy's
  // subquery spans: the stitch really crossed the process boundary.
  const std::string sim_tree = sim_sink.ExportCanonicalTree(sim_trace);
  EXPECT_NE(std::string::npos, sim_tree.find("partition ads/p0"));
  EXPECT_NE(std::string::npos, sim_tree.find("partition ads/p7"));
  EXPECT_NE(std::string::npos, sim_tree.find("subquery p3"));
  EXPECT_NE(std::string::npos, sim_tree.find("merge"));

  // The headline property: byte-identical canonical exports.
  EXPECT_EQ(sim_tree, socket_sink.ExportCanonicalTree(socket_trace));

  // And byte-identical canonical profiles derived from them.
  obs::QueryProfile sim_profile =
      obs::BuildQueryProfile(sim_sink.Spans(sim_trace));
  obs::QueryProfile socket_profile =
      obs::BuildQueryProfile(socket_sink.Spans(socket_trace));
  const std::string canonical = sim_profile.CanonicalText();
  EXPECT_EQ(canonical, socket_profile.CanonicalText());
  EXPECT_EQ(8u, sim_profile.subqueries.size());
  EXPECT_GT(sim_profile.rows_scanned, 0);
  EXPECT_GT(sim_profile.bricks_scanned, 0);
  EXPECT_EQ(2, sim_profile.fanout);

  // The client-visible profile text embeds the same canonical body.
  EXPECT_EQ(0u, sim_rows->profile_text.find(canonical));
  EXPECT_EQ(0u, socket_rows->profile_text.find(canonical));
  EXPECT_FALSE(socket_rows->trace_text.empty());
}

TEST(NodeTelemetryTest, ProfileOptInGatesClientPayload) {
  EpollCluster cluster;
  cubrick::QueryRequest request(TestQuery());
  request.tracing = false;

  // Untraced, unprofiled: no payload, no retained trace.
  auto plain = cluster.Query(request);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_TRUE(plain->profile_text.empty());
  EXPECT_TRUE(plain->trace_text.empty());
  EXPECT_EQ(0u, cluster.proxy->core().trace_sink().LastTraceId());

  // profile=true alone forces the trace on for this query.
  request.profile = true;
  auto profiled = cluster.Query(request);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  EXPECT_FALSE(profiled->profile_text.empty());
  EXPECT_NE(std::string::npos, profiled->profile_text.find("query=ads"));
  EXPECT_NE(std::string::npos, profiled->trace_text.find("query ads"));
  // Rows are identical with and without profiling.
  ASSERT_EQ(plain->rows.size(), profiled->rows.size());
}

// Minimal HTTP/1.0 GET against 127.0.0.1:<port>; returns the full
// response (status line, headers, body) or "" on connect failure.
std::string HttpGet(int port, const std::string& path) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(NodeTelemetryTest, AdminEndpointsServeMetricsHealthAndTraces) {
  node::NodeOptions proxy_options;
  proxy_options.slow_log.latency_threshold_micros = 1;  // capture everything
  EpollCluster cluster(proxy_options);
  ASSERT_TRUE(cluster.proxy->StartAdmin("127.0.0.1:0").ok());
  ASSERT_TRUE(cluster.s0.StartAdmin("127.0.0.1:0").ok());
  const int proxy_admin = cluster.proxy->admin_port();
  const int server_admin = cluster.s0.admin_port();
  ASSERT_GT(proxy_admin, 0);
  ASSERT_GT(server_admin, 0);

  cubrick::QueryRequest request(TestQuery());
  request.profile = true;
  ASSERT_TRUE(cluster.Query(request).ok());

  // /healthz names the role.
  std::string health = HttpGet(proxy_admin, "/healthz");
  EXPECT_NE(std::string::npos, health.find("HTTP/1.0 200"));
  EXPECT_NE(std::string::npos, health.find("ok role=proxy"));
  EXPECT_NE(std::string::npos,
            HttpGet(server_admin, "/healthz").find("ok role=server"));

  // /metrics: Prometheus exposition with typed series and histogram
  // buckets, counters advanced by the query we just ran.
  std::string metrics = HttpGet(proxy_admin, "/metrics");
  EXPECT_NE(std::string::npos, metrics.find("HTTP/1.0 200"));
  EXPECT_NE(std::string::npos,
            metrics.find("# TYPE scalewall_node_queries_total counter"));
  EXPECT_NE(std::string::npos, metrics.find("scalewall_node_queries_total 1"));
  EXPECT_NE(std::string::npos,
            metrics.find("scalewall_node_query_latency_ms_bucket{le="));
  EXPECT_NE(
      std::string::npos,
      metrics.find("scalewall_net_frames_total{backend=\"epoll\",dir=\"out\"}"));

  // /traces on the proxy holds the stitched tree (remote partition
  // spans included); servers retain nothing.
  std::string traces = Body(HttpGet(proxy_admin, "/traces"));
  EXPECT_NE(std::string::npos, traces.find("retained traces: 1"));
  EXPECT_NE(std::string::npos, traces.find("query ads"));
  EXPECT_NE(std::string::npos, traces.find("partition ads/p0"));
  EXPECT_NE(std::string::npos,
            Body(HttpGet(server_admin, "/traces")).find("no retained traces"));

  // /slowlog captured the query (threshold 1us) as a rendered profile.
  std::string slowlog = Body(HttpGet(proxy_admin, "/slowlog"));
  EXPECT_NE(std::string::npos, slowlog.find("captured_total=1"));
  EXPECT_NE(std::string::npos, slowlog.find("profile query=ads"));
  // The server role has no slow-query ring.
  EXPECT_NE(std::string::npos,
            HttpGet(server_admin, "/slowlog").find("HTTP/1.0 404"));

  // Unknown paths 404 and list what exists; non-GET methods are 400.
  std::string missing = HttpGet(proxy_admin, "/nope");
  EXPECT_NE(std::string::npos, missing.find("HTTP/1.0 404"));
  EXPECT_NE(std::string::npos, missing.find("/metrics"));

  // Repeated scrapes keep working (one connection per request).
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(std::string::npos,
              HttpGet(proxy_admin, "/healthz").find("HTTP/1.0 200"));
  }
}

TEST(NodeTelemetryTest, MalformedTelemetryBlockDropsButQuerySucceeds) {
  // A server that answers subqueries with a corrupted span batch: the
  // proxy must count the decode error, drop the batch, and still return
  // correct rows with the proxy-side spans intact.
  sim::Simulation sim(7);
  net::SimNetwork network(&sim);
  obs::MetricsRegistry metrics;

  node::ServerCore s0(SimCluster::ServerOptions(0), &metrics);
  node::ServerCore s1(SimCluster::ServerOptions(1), &metrics);
  ASSERT_TRUE(s0.LoadPartitions().ok());
  ASSERT_TRUE(s1.LoadPartitions().ok());
  auto corrupting = [](node::ServerCore* core) {
    return [core](const net::Message& m,
                  const net::CallSideband&) -> Result<net::Message> {
      auto response = core->Handle(m);
      if (response.ok() &&
          response->type == net::FrameType::kSubqueryResponse) {
        // Re-encode with a garbage telemetry block (bad version byte).
        std::string telemetry;
        auto partial =
            cubrick::wire::DecodeSubqueryResponse(response->payload,
                                                  &telemetry);
        if (partial.ok() && !telemetry.empty()) {
          telemetry[0] = static_cast<char>(0xEE);
          response->payload =
              cubrick::wire::EncodeSubqueryResponse(*partial, telemetry);
        }
      }
      return response;
    };
  };
  network.Node("s0")->SetHandler(corrupting(&s0));
  network.Node("s1")->SetHandler(corrupting(&s1));

  node::ProxyCore proxy(SimCluster::ProxyOptions(), network.Node("proxy"),
                        &metrics);
  network.Node("proxy")->SetHandler(
      [&proxy](const net::Message& m, const net::CallSideband&) {
        return proxy.Handle(m);
      });

  cubrick::QueryRequest request(TestQuery());
  request.profile = true;
  auto rows = node::SubmitClientQuery(*network.Node("client"), "proxy",
                                      request);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_FALSE(rows->rows.empty());

  // The proxy's own spans survive; the remote partitions do not.
  const std::string tree =
      proxy.trace_sink().ExportCanonicalTree(proxy.trace_sink().LastTraceId());
  EXPECT_NE(std::string::npos, tree.find("subquery p0"));
  EXPECT_EQ(std::string::npos, tree.find("partition ads/p0"));

  // Every dropped batch was counted, labeled with its failure kind.
  const std::string exported = metrics.ExportPrometheus();
  EXPECT_NE(
      std::string::npos,
      exported.find("scalewall_net_decode_errors_total{kind=\"version\"} 8"));
}

}  // namespace
}  // namespace scalewall
