// obs::QueryProfile + obs::SlowQueryLog.
//
// BuildQueryProfile folds a query's span tree (the vocabulary the query
// path records) into the operator-facing digest; the tests record a
// representative tree through a real TraceSink and assert every
// recognized span and tag lands in the right profile field. The
// SlowQueryLog tests cover the two capture rules, ring eviction order,
// and concurrent capture/snapshot (run under -L tsan).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/profile.h"
#include "obs/trace.h"

namespace scalewall::obs {
namespace {

// Records the span vocabulary of one traced query: root with tags,
// admission wait, an attempt with two partition scans (one cache hit,
// one miss), a modeled "scan" span, a hedge, a net hop and the merge.
uint64_t MakeQueryTrace(TraceSink& sink) {
  TraceContext root = sink.StartTrace("query ads", 1000);
  root.Annotate("tenant", "dashboards");
  root.Annotate("deadline", "500000");

  TraceContext queue = root.Child("admission queue", 1000);
  queue.Annotate("predicted_service", "1200");
  queue.End(1400);  // 400us queue wait

  TraceContext attempt = root.Child("attempt 1", 1400);
  TraceContext p0 = attempt.Child("partition ads/p0", 1500);
  p0.Annotate("server", "s0");
  p0.Annotate("rows_scanned", "1000");
  p0.Annotate("bricks", "8");
  p0.Annotate("rle_skipped", "3");
  p0.Annotate("morsels", "4");
  p0.Annotate("cache_hit", "true");
  p0.End(2500);  // 1000us scan

  TraceContext p1 = attempt.Child("partition ads/p1", 1500);
  p1.Annotate("server", "s1");
  p1.Annotate("rows_scanned", "2000");
  p1.Annotate("bricks", "16");
  p1.Annotate("rle_skipped", "5");
  p1.Annotate("morsels", "4");
  p1.Annotate("cache_hit", "false");
  p1.End(3500);  // 2000us scan

  // Modeled scan span (the simulator's vocabulary — real partition
  // spans above already carry wall time; both fold into scan_micros).
  TraceContext scan = attempt.Child("scan p1", 2500);
  scan.End(3000);  // 500us modeled scan

  TraceContext hedge = attempt.Child("hedge p1", 3000);
  hedge.End(3200);
  TraceContext net = attempt.Child("net subquery", 1500);
  net.End(1600);  // 100us on the wire
  attempt.End(3500);

  TraceContext retry = root.Child("attempt 2", 3500);
  retry.End(3600);

  TraceContext merge = root.Child("merge", 3600);
  merge.Annotate("rows", "4");
  merge.End(3800);  // 200us merge

  root.Annotate("status", "OK");
  root.Annotate("attempts", "2");
  root.Annotate("fanout", "2");
  root.End(4000);  // 3000us total

  return root.trace;
}

TEST(QueryProfileTest, BuildFoldsSpanVocabulary) {
  TraceSink sink;
  const uint64_t trace_id = MakeQueryTrace(sink);
  QueryProfile profile = BuildQueryProfile(sink.Spans(trace_id));

  EXPECT_EQ("ads", profile.table);
  EXPECT_EQ("OK", profile.status);
  EXPECT_EQ("dashboards", profile.tenant);
  EXPECT_EQ(2, profile.attempts);
  EXPECT_EQ(2, profile.fanout);

  EXPECT_EQ(3000, profile.latency_micros);
  EXPECT_EQ(400, profile.queue_wait_micros);
  EXPECT_EQ(3500, profile.scan_micros);  // 1000 + 2000 partition + 500 modeled
  EXPECT_EQ(200, profile.merge_micros);
  EXPECT_EQ(100, profile.net_micros);
  EXPECT_EQ(500000, profile.deadline_micros);
  EXPECT_NEAR(3000.0 / 500000.0, profile.deadline_burn(), 1e-12);

  EXPECT_EQ(1, profile.retries);  // two attempts = one retry
  EXPECT_EQ(1, profile.hedges);
  EXPECT_EQ(3000, profile.rows_scanned);
  EXPECT_EQ(24, profile.bricks_scanned);
  EXPECT_EQ(8, profile.bricks_rle_skipped);
  EXPECT_EQ(8, profile.morsels);
  EXPECT_EQ(1, profile.cache_hits);
  EXPECT_EQ(1, profile.cache_misses);

  ASSERT_EQ(2u, profile.subqueries.size());
  EXPECT_EQ("partition ads/p0", profile.subqueries[0].name);
  EXPECT_EQ("s0", profile.subqueries[0].server);
  EXPECT_EQ(1000, profile.subqueries[0].wall_micros);
  EXPECT_EQ(1, profile.subqueries[0].cache_hit);
  EXPECT_EQ("partition ads/p1", profile.subqueries[1].name);
  EXPECT_EQ(2000, profile.subqueries[1].rows_scanned);
  EXPECT_EQ(0, profile.subqueries[1].cache_hit);
}

TEST(QueryProfileTest, CanonicalTextExcludesTimingsAndSortsSubqueries) {
  TraceSink sink;
  const uint64_t trace_id = MakeQueryTrace(sink);
  QueryProfile profile = BuildQueryProfile(sink.Spans(trace_id));

  const std::string canonical = profile.CanonicalText();
  EXPECT_NE(std::string::npos, canonical.find("query=ads"));
  EXPECT_NE(std::string::npos, canonical.find("subquery partition ads/p0"));
  EXPECT_EQ(std::string::npos, canonical.find("_us="))
      << "timings leaked into the canonical form:\n"
      << canonical;

  // Perturbing only the timings must not change the canonical form —
  // that is the property the sim-vs-socket identity test relies on.
  QueryProfile shifted = profile;
  shifted.latency_micros += 12345;
  shifted.scan_micros *= 3;
  for (auto& sub : shifted.subqueries) sub.wall_micros += 999;
  EXPECT_EQ(canonical, shifted.CanonicalText());
  EXPECT_NE(profile.Text(), shifted.Text());

  // Text() is a superset: canonical body plus the time line.
  EXPECT_EQ(0u, profile.Text().find(canonical));
  EXPECT_NE(std::string::npos, profile.Text().find("total_us=3000"));
}

TEST(QueryProfileTest, ToleratesUnknownAndPartialSpans) {
  TraceSink sink;
  TraceContext root = sink.StartTrace("query ads", 0);
  TraceContext odd = root.Child("compaction sweep", 0);  // unknown span
  odd.End(10);
  TraceContext p = root.Child("partition ads/p7", 0);
  p.Annotate("rows_scanned", "not-a-number");  // malformed tag -> 0
  p.End(5);
  root.End(20);

  QueryProfile profile = BuildQueryProfile(sink.Spans(root.trace));
  EXPECT_EQ("ads", profile.table);
  ASSERT_EQ(1u, profile.subqueries.size());
  EXPECT_EQ(0, profile.subqueries[0].rows_scanned);
  EXPECT_EQ(0, profile.attempts);

  // No spans at all -> an empty but well-formed profile.
  QueryProfile empty = BuildQueryProfile({});
  EXPECT_TRUE(empty.table.empty());
  EXPECT_FALSE(empty.CanonicalText().empty());
}

QueryProfile ProfileWithLatency(int64_t micros, int64_t deadline = 0) {
  QueryProfile profile;
  profile.table = "ads";
  profile.latency_micros = micros;
  profile.deadline_micros = deadline;
  return profile;
}

TEST(SlowQueryLogTest, LatencyThresholdGatesCapture) {
  SlowQueryLogOptions options;
  options.latency_threshold_micros = 1000;
  SlowQueryLog log(options);

  EXPECT_FALSE(log.MaybeCapture(ProfileWithLatency(999)));
  EXPECT_TRUE(log.MaybeCapture(ProfileWithLatency(1000)));
  EXPECT_TRUE(log.MaybeCapture(ProfileWithLatency(5000)));
  EXPECT_EQ(2u, log.size());
  EXPECT_EQ(2, log.captured_total());
  EXPECT_EQ(0, log.evicted_total());

  // Newest first.
  auto snapshot = log.Snapshot();
  ASSERT_EQ(2u, snapshot.size());
  EXPECT_EQ(5000, snapshot[0].latency_micros);
  EXPECT_EQ(1000, snapshot[1].latency_micros);
}

TEST(SlowQueryLogTest, DeadlineBurnThresholdGatesCapture) {
  SlowQueryLogOptions options;
  options.deadline_burn_threshold = 0.8;
  SlowQueryLog log(options);

  // No deadline -> burn rule can't fire.
  EXPECT_FALSE(log.MaybeCapture(ProfileWithLatency(1000000)));
  // 50% burn: under threshold.
  EXPECT_FALSE(log.MaybeCapture(ProfileWithLatency(500, /*deadline=*/1000)));
  // 90% burn: captured even though latency is tiny.
  EXPECT_TRUE(log.MaybeCapture(ProfileWithLatency(900, /*deadline=*/1000)));
  EXPECT_EQ(1u, log.size());
}

TEST(SlowQueryLogTest, DisabledThresholdsNeverCapture) {
  SlowQueryLog log;  // both thresholds zero
  EXPECT_FALSE(log.MaybeCapture(ProfileWithLatency(1 << 30)));
  EXPECT_EQ(0u, log.size());

  SlowQueryLogOptions zero_capacity;
  zero_capacity.capacity = 0;
  zero_capacity.latency_threshold_micros = 1;
  SlowQueryLog empty(zero_capacity);
  EXPECT_FALSE(empty.MaybeCapture(ProfileWithLatency(100)));
  EXPECT_EQ(0u, empty.size());
}

TEST(SlowQueryLogTest, RingEvictsOldestAtCapacity) {
  SlowQueryLogOptions options;
  options.capacity = 3;
  SlowQueryLog log(options);
  for (int i = 0; i < 10; ++i) {
    log.Capture(ProfileWithLatency(i));
  }
  EXPECT_EQ(3u, log.size());
  EXPECT_EQ(10, log.captured_total());
  EXPECT_EQ(7, log.evicted_total());
  auto snapshot = log.Snapshot();
  ASSERT_EQ(3u, snapshot.size());
  EXPECT_EQ(9, snapshot[0].latency_micros);  // newest first
  EXPECT_EQ(8, snapshot[1].latency_micros);
  EXPECT_EQ(7, snapshot[2].latency_micros);
}

TEST(SlowQueryLogTest, ConcurrentCaptureAndSnapshot) {
  SlowQueryLogOptions options;
  options.capacity = 16;
  options.latency_threshold_micros = 1;
  SlowQueryLog log(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&log, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        log.MaybeCapture(ProfileWithLatency(w * kPerWriter + i + 1));
      }
    });
  }
  threads.emplace_back([&log] {
    for (int i = 0; i < 200; ++i) {
      auto snapshot = log.Snapshot();
      EXPECT_LE(snapshot.size(), 16u);
    }
  });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(16u, log.size());
  EXPECT_EQ(kWriters * kPerWriter, log.captured_total());
  EXPECT_EQ(kWriters * kPerWriter - 16, log.evicted_total());
}

}  // namespace
}  // namespace scalewall::obs
