// Unit tests for scalewall::obs — the TraceSink (span trees, canonical
// export ordering, eviction/caps, Chrome trace JSON) and the
// MetricsRegistry (cell sharing, label identity, text export,
// thread-safety of counter handles under a work-stealing pool).

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace scalewall::obs {
namespace {

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, RecordsSpanTreeWithAnnotations) {
  TraceSink sink;
  TraceContext root = sink.StartTrace("query t", 100);
  ASSERT_TRUE(root.active());
  root.Annotate("status", "kOk");

  TraceContext attempt = root.Child("attempt 1", 100);
  TraceContext sub = attempt.Child("subquery p0", 110);
  sub.End(150);
  attempt.End(160);
  root.End(170);

  std::vector<SpanRecord> spans = sink.Spans(root.trace);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "query t");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].start, 100);
  EXPECT_EQ(spans[0].end, 170);
  ASSERT_EQ(spans[0].tags.size(), 1u);
  EXPECT_EQ(spans[0].tags[0].first, "status");
  EXPECT_EQ(spans[0].tags[0].second, "kOk");
  EXPECT_EQ(spans[1].name, "attempt 1");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].name, "subquery p0");
  EXPECT_EQ(spans[2].parent, spans[1].id);
}

TEST(TraceSinkTest, InactiveContextIsNoOp) {
  TraceContext none;
  EXPECT_FALSE(none.active());
  TraceContext child = none.Child("x", 0);
  EXPECT_FALSE(child.active());
  child.Annotate("k", "v");  // must not crash
  child.End(10);
}

TEST(TraceSinkTest, EvictsOldestWholeTrace) {
  TraceSinkOptions options;
  options.max_traces = 2;
  TraceSink sink(options);
  TraceContext a = sink.StartTrace("a", 0);
  TraceContext b = sink.StartTrace("b", 0);
  TraceContext c = sink.StartTrace("c", 0);
  EXPECT_EQ(sink.num_traces(), 2u);
  EXPECT_TRUE(sink.Spans(a.trace).empty());  // evicted
  EXPECT_EQ(sink.Spans(b.trace).size(), 1u);
  EXPECT_EQ(sink.Spans(c.trace).size(), 1u);
  EXPECT_EQ(sink.LastTraceId(), c.trace);
  std::vector<uint64_t> ids = sink.TraceIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], b.trace);
  EXPECT_EQ(ids[1], c.trace);
}

TEST(TraceSinkTest, SpanCapDropsSubtreesAndCounts) {
  TraceSinkOptions options;
  options.max_spans_per_trace = 3;
  TraceSink sink(options);
  TraceContext root = sink.StartTrace("r", 0);
  TraceContext a = root.Child("a", 1);
  TraceContext b = root.Child("b", 2);
  ASSERT_TRUE(b.active());
  // Cap reached: further children are refused, including children of the
  // refused span (the subtree is dropped silently).
  TraceContext c = root.Child("c", 3);
  EXPECT_FALSE(c.active());
  TraceContext grandchild = c.Child("gc", 4);
  EXPECT_FALSE(grandchild.active());
  EXPECT_EQ(sink.NumSpans(root.trace), 3u);
  EXPECT_EQ(sink.dropped_spans(), 1);  // only `c` hit the sink
  a.End(5);
}

TEST(TraceSinkTest, CanonicalOrderIndependentOfInsertionOrder) {
  // Two sinks record the same logical tree with sibling insertion
  // reversed (as a racy pool would); exports must match byte-for-byte.
  auto build = [](bool reversed) {
    auto sink = std::make_unique<TraceSink>();
    TraceContext root = sink->StartTrace("q", 0);
    if (reversed) {
      TraceContext late = root.Child("morsel 1", 20);
      late.Annotate("rows", "64");
      late.End(25);
      TraceContext early = root.Child("morsel 0", 10);
      early.Annotate("rows", "128");
      early.End(15);
    } else {
      TraceContext early = root.Child("morsel 0", 10);
      early.Annotate("rows", "128");
      early.End(15);
      TraceContext late = root.Child("morsel 1", 20);
      late.Annotate("rows", "64");
      late.End(25);
    }
    root.End(30);
    return sink;
  };
  auto forward = build(false);
  auto backward = build(true);
  EXPECT_EQ(forward->ExportTextTree(1), backward->ExportTextTree(1));
  EXPECT_EQ(forward->ExportChromeTrace(1), backward->ExportChromeTrace(1));

  // Canonical ids are DFS pre-order positions: 1 (root), 2, 3.
  std::vector<SpanRecord> spans = backward->Spans(1);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[1].id, 2u);
  EXPECT_EQ(spans[1].name, "morsel 0");  // earlier start sorts first
  EXPECT_EQ(spans[2].id, 3u);
  EXPECT_EQ(spans[2].name, "morsel 1");
}

TEST(TraceSinkTest, TextTreeIndentsByDepth) {
  TraceSink sink;
  TraceContext root = sink.StartTrace("query t", 0);
  TraceContext attempt = root.Child("attempt 1", 0);
  TraceContext sub = attempt.Child("subquery p0", 5);
  sub.End(20);
  attempt.End(25);
  root.End(30);
  std::string tree = sink.ExportTextTree(root.trace);
  EXPECT_NE(tree.find("query t [start=0 dur=30]"), std::string::npos);
  EXPECT_NE(tree.find("\n  attempt 1 [start=0 dur=25]"), std::string::npos);
  EXPECT_NE(tree.find("\n    subquery p0 [start=5 dur=15]"), std::string::npos);
}

// Minimal JSON syntax check: balanced containers outside strings, valid
// escapes, no trailing garbage. Enough to catch a malformed export.
bool JsonIsWellFormed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= text.size()) return false;
        char e = text[i + 1];
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't' && e != 'u') {
          return false;
        }
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty() && !text.empty();
}

TEST(TraceSinkTest, ChromeTraceJsonIsWellFormed) {
  TraceSink sink;
  TraceContext root = sink.StartTrace("query \"quoted\"\n", 0);
  root.Annotate("path\\key", "line1\nline2\ttabbed");
  TraceContext child = root.Child("partition t/p0", 10);
  child.Annotate("rows", "640");
  child.End(42);
  root.End(50);

  std::string json = sink.ExportChromeTrace(root.trace);
  EXPECT_TRUE(JsonIsWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"partition t/p0\""), std::string::npos);
  // Escapes applied.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttabbed"), std::string::npos);
  // Unknown trace id -> empty document, still well-formed.
  std::string empty = sink.ExportChromeTrace(9999);
  EXPECT_TRUE(JsonIsWellFormed(empty)) << empty;
}

TEST(TraceSinkTest, ConcurrentSpanRecordingIsSafeAndComplete) {
  TraceSink sink;
  TraceContext root = sink.StartTrace("q", 0);
  constexpr int kSpans = 256;
  {
    exec::ThreadPool pool(4);
    exec::TaskGroup group(&pool);
    for (int i = 0; i < kSpans; ++i) {
      group.Run([&root, i] {
        TraceContext span =
            root.Child("morsel " + std::to_string(i), /*start=*/i);
        span.Annotate("i", std::to_string(i));
        span.End(i + 1);
      });
    }
    group.Wait();
  }
  root.End(kSpans);
  EXPECT_EQ(sink.NumSpans(root.trace), static_cast<size_t>(kSpans) + 1);
  // Canonical order sorts the racy recording by start time.
  std::vector<SpanRecord> spans = sink.Spans(root.trace);
  ASSERT_EQ(spans.size(), static_cast<size_t>(kSpans) + 1);
  for (int i = 0; i < kSpans; ++i) {
    EXPECT_EQ(spans[i + 1].name, "morsel " + std::to_string(i));
    EXPECT_EQ(spans[i + 1].parent, 1u);
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameAndLabelsShareOneCell) {
  MetricsRegistry registry;
  Counter a = registry.GetCounter("requests_total");
  Counter b = registry.GetCounter("requests_total");
  ++a;
  b += 2;
  EXPECT_EQ(a.load(), 3);
  EXPECT_EQ(b.load(), 3);
  EXPECT_EQ(registry.num_series(), 1u);
}

TEST(MetricsRegistryTest, DistinctLabelSetsAreDistinctSeries) {
  MetricsRegistry registry;
  Counter r0 = registry.GetCounter("x_total", {{"region", "0"}});
  Counter r1 = registry.GetCounter("x_total", {{"region", "1"}});
  ++r0;
  r1 += 5;
  EXPECT_EQ(r0.load(), 1);
  EXPECT_EQ(r1.load(), 5);
  EXPECT_EQ(registry.num_series(), 2u);

  // Label order must not matter for identity.
  Counter ab = registry.GetCounter("y_total", {{"a", "1"}, {"b", "2"}});
  Counter ba = registry.GetCounter("y_total", {{"b", "2"}, {"a", "1"}});
  ++ab;
  EXPECT_EQ(ba.load(), 1);
  EXPECT_EQ(registry.num_series(), 3u);
}

TEST(MetricsRegistryTest, StandaloneHandlesWorkWithoutRegistry) {
  Counter c;
  ++c;
  c += 4;
  c.fetch_add(5);
  EXPECT_EQ(static_cast<int64_t>(c), 10);
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  HistogramMetric h;
  h.Add(1.0);
  h.Add(3.0);
  EXPECT_EQ(h.count(), 2);
}

TEST(MetricsRegistryTest, ExportTextRendersAllKindsSorted) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("b_total", {{"region", "0"}});
  c += 8;
  Gauge g = registry.GetGauge("c_depth");
  g.Set(3.5);
  HistogramMetric h = registry.GetHistogram("a_latency_ms");
  h.Add(10.0);
  h.Add(20.0);

  std::string text = registry.ExportText();
  // Counters render as plain integers, no decimal point.
  EXPECT_NE(text.find("b_total{region=\"0\"} 8\n"), std::string::npos);
  EXPECT_NE(text.find("c_depth 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("a_latency_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("a_latency_ms{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("a_latency_ms{quantile=\"0.999\"}"), std::string::npos);
  EXPECT_NE(text.find("a_latency_ms_count 2\n"), std::string::npos);
  // Sorted by name: histogram block first, then counter, then gauge.
  EXPECT_LT(text.find("a_latency_ms"), text.find("b_total"));
  EXPECT_LT(text.find("b_total"), text.find("c_depth"));
  // Quantile label composes with series labels, quantile last.
  HistogramMetric labeled =
      registry.GetHistogram("d_ms", {{"server", "3"}});
  labeled.Add(1.0);
  EXPECT_NE(registry.ExportText().find("d_ms{server=\"3\",quantile=\"0.5\"}"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ExportTextIsStableAcrossCalls) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("z_total");
  c += 3;
  registry.GetGauge("a_gauge").Set(1.0);
  EXPECT_EQ(registry.ExportText(), registry.ExportText());
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromPoolWorkers) {
  MetricsRegistry registry;
  Counter counter = registry.GetCounter("scans_total");
  HistogramMetric histogram = registry.GetHistogram("latency_ms");
  constexpr int kTasks = 512;
  constexpr int kPerTask = 16;
  {
    exec::ThreadPool pool(4);
    exec::TaskGroup group(&pool);
    for (int t = 0; t < kTasks; ++t) {
      group.Run([&registry, &histogram] {
        // Handles are shared cells: re-fetching inside workers must hit
        // the same atomic.
        Counter local = registry.GetCounter("scans_total");
        for (int i = 0; i < kPerTask; ++i) ++local;
        histogram.Add(1.0);
      });
    }
    group.Wait();
  }
  EXPECT_EQ(counter.load(), int64_t{kTasks} * kPerTask);
  EXPECT_EQ(histogram.count(), kTasks);
}

}  // namespace
}  // namespace scalewall::obs
