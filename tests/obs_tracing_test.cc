// End-to-end tests for distributed query tracing and the unified
// metrics export: a proxied query must produce the full span tree
// (proxy attempt -> coordinator subquery -> server partition -> morsel),
// retries and hedges must appear as spans with correct parentage, and
// both exports must be byte-identical across same-seed runs even with
// morsel spans recorded concurrently by exec-pool workers.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "core/metrics.h"
#include "obs/trace.h"
#include "workload/generators.h"

namespace scalewall::core {
namespace {

cubrick::Query CountQuery(const std::string& table) {
  cubrick::Query q;
  q.table = table;
  q.aggregations = {cubrick::Aggregation{0, cubrick::AggOp::kCount},
                    cubrick::Aggregation{0, cubrick::AggOp::kSum}};
  return q;
}

DeploymentOptions TracedOptions(uint64_t seed) {
  DeploymentOptions options;
  options.seed = seed;
  options.topology.regions = 1;
  options.topology.racks_per_region = 2;
  options.topology.servers_per_rack = 5;  // 10 servers
  options.max_shards = 5000;
  options.per_host_failure_probability = 0.0;
  options.enable_query_tracing = true;
  // Morsel-parallel scans so the deepest span layer is recorded from
  // pool workers (the interesting case for determinism).
  options.server_options.scan_workers = 2;
  options.server_options.morsel_rows = 64;
  return options;
}

// Walks `span` to the root, returning the names along the way
// (self first, root last).
std::vector<std::string> AncestryNames(
    const std::vector<obs::SpanRecord>& spans, const obs::SpanRecord& span) {
  std::map<uint64_t, const obs::SpanRecord*> by_id;
  for (const auto& s : spans) by_id[s.id] = &s;
  std::vector<std::string> names;
  const obs::SpanRecord* cur = &span;
  while (true) {
    names.push_back(cur->name);
    if (cur->parent == 0) break;
    auto it = by_id.find(cur->parent);
    if (it == by_id.end()) break;
    cur = it->second;
  }
  return names;
}

bool AnyStartsWith(const std::vector<std::string>& names,
                   const std::string& prefix) {
  for (const auto& n : names) {
    if (n.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

TEST(QueryTracingTest, SingleQueryProducesFullDepthSpanTree) {
  Deployment dep(TracedOptions(/*seed=*/31));
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema).ok());
  Rng rng(99);
  ASSERT_TRUE(dep.LoadRows("t", workload::GenerateRows(schema, 4000, rng)).ok());
  dep.RunFor(15 * kSecond);

  auto outcome = dep.Query(cubrick::QueryRequest(CountQuery("t")));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;

  obs::TraceSink& sink = dep.trace_sink();
  uint64_t trace_id = sink.LastTraceId();
  ASSERT_NE(trace_id, 0u);
  std::vector<obs::SpanRecord> spans = sink.Spans(trace_id);
  ASSERT_GT(spans.size(), 4u);

  // Root is the query span, closed at the query's end with its status.
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].name, "query t");
  EXPECT_EQ(spans[0].end - spans[0].start, outcome.latency);
  bool has_status = false;
  for (const auto& [k, v] : spans[0].tags) {
    if (k == "status" && v == "OK") has_status = true;
  }
  EXPECT_TRUE(has_status);

  // The deepest layer must be present and hang off the full chain:
  // morsel -> partition -> subquery -> attempt -> query.
  bool full_depth = false;
  for (const auto& span : spans) {
    if (span.name.rfind("morsel ", 0) != 0) continue;
    std::vector<std::string> chain = AncestryNames(spans, span);
    if (AnyStartsWith(chain, "partition ") &&
        AnyStartsWith(chain, "subquery p") &&
        AnyStartsWith(chain, "attempt ") && AnyStartsWith(chain, "query ")) {
      full_depth = true;
      break;
    }
  }
  EXPECT_TRUE(full_depth) << sink.ExportTextTree(trace_id);

  // Every span closes within the query window (sim-time stamps only).
  for (const auto& span : spans) {
    EXPECT_GE(span.start, spans[0].start);
    EXPECT_LE(span.end, spans[0].end);
    EXPECT_LE(span.start, span.end);
  }

  // The proxy-side query log links to the trace.
  auto traces = dep.proxy().RecentTraces(1);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].trace_id, trace_id);
}

TEST(QueryTracingTest, RetryAndHedgeSpansHaveCorrectParentage) {
  DeploymentOptions options = TracedOptions(/*seed=*/7);
  options.topology.racks_per_region = 4;  // 20 servers
  options.per_host_failure_probability = 0.01;
  options.subquery_policy.max_subquery_retries = 2;
  options.subquery_policy.hedge_quantile = 0.9;
  options.trace_options.max_traces = 256;
  Deployment dep(options);
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(
      dep.CreateTable("t", schema, TableOptions{.partitions = 16}).ok());
  Rng rng(3);
  ASSERT_TRUE(dep.LoadRows("t", workload::GenerateRows(schema, 2000, rng)).ok());
  dep.RunFor(60 * kSecond);

  for (int i = 0; i < 80; ++i) {
    dep.Query(cubrick::QueryRequest(CountQuery("t")));
    dep.RunFor(200 * kMillisecond);
  }
  // The reliability layer did fire (fan-out 16 at p=0.01 per host).
  EXPECT_GT(dep.proxy().stats().subquery_retries, 0);
  EXPECT_GT(dep.proxy().stats().hedges_fired, 0);

  obs::TraceSink& sink = dep.trace_sink();
  bool saw_retry = false, saw_hedge = false;
  for (uint64_t trace_id : sink.TraceIds()) {
    std::vector<obs::SpanRecord> spans = sink.Spans(trace_id);
    std::map<uint64_t, const obs::SpanRecord*> by_id;
    for (const auto& s : spans) by_id[s.id] = &s;
    for (const auto& span : spans) {
      if (span.name.rfind("retry s", 0) == 0) {
        saw_retry = true;
        // Retry draws happen while the attempt fans out: parent is the
        // attempt span.
        ASSERT_NE(by_id.count(span.parent), 0u);
        EXPECT_EQ(by_id[span.parent]->name.rfind("attempt ", 0), 0u);
      } else if (span.name == "hedge") {
        saw_hedge = true;
        // A hedge duplicates one subquery: parent is that subquery span.
        ASSERT_NE(by_id.count(span.parent), 0u);
        EXPECT_EQ(by_id[span.parent]->name.rfind("subquery p", 0), 0u);
        bool has_won = false;
        for (const auto& [k, v] : span.tags) {
          if (k == "won") has_won = (v == "true" || v == "false");
        }
        EXPECT_TRUE(has_won);
      }
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_hedge);
}

TEST(QueryTracingTest, ExportsAreByteIdenticalAcrossSameSeedRuns) {
  auto run = [] {
    Deployment dep(TracedOptions(/*seed=*/17));
    cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
    EXPECT_TRUE(dep.CreateTable("t", schema).ok());
    Rng rng(5);
    EXPECT_TRUE(
        dep.LoadRows("t", workload::GenerateRows(schema, 3000, rng)).ok());
    dep.RunFor(15 * kSecond);
    for (int i = 0; i < 5; ++i) {
      dep.Query(cubrick::QueryRequest(CountQuery("t")));
      dep.RunFor(100 * kMillisecond);
    }
    std::string all;
    for (uint64_t trace_id : dep.trace_sink().TraceIds()) {
      all += dep.trace_sink().ExportChromeTrace(trace_id);
      all += dep.trace_sink().ExportTextTree(trace_id);
    }
    return all;
  };
  std::string first = run();
  std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(QueryTracingTest, RecentTracesReturnsNewestFirstCapped) {
  Deployment dep(TracedOptions(/*seed=*/23));
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema).ok());
  Rng rng(5);
  ASSERT_TRUE(dep.LoadRows("t", workload::GenerateRows(schema, 500, rng)).ok());
  dep.RunFor(15 * kSecond);
  for (int i = 0; i < 4; ++i) dep.Query(cubrick::QueryRequest(CountQuery("t")));

  auto all = dep.proxy().RecentTraces();
  ASSERT_EQ(all.size(), 4u);
  // Newest first: trace ids are assigned sequentially per query.
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i - 1].trace_id, all[i].trace_id);
  }
  auto two = dep.proxy().RecentTraces(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].trace_id, all[0].trace_id);
  EXPECT_EQ(two[1].trace_id, all[1].trace_id);
  // A limit beyond the log size returns everything.
  EXPECT_EQ(dep.proxy().RecentTraces(64).size(), 4u);
}

TEST(QueryTracingTest, MetricsExportCoversAllLayersAndIsStable) {
  auto run = [] {
    // Serial scans: exec-pool gauges (scheduling-dependent) stay out of
    // the registry, so the whole export is a pure function of the seed.
    DeploymentOptions options = TracedOptions(/*seed=*/41);
    options.server_options.scan_workers = 0;
    Deployment dep(options);
    cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
    EXPECT_TRUE(dep.CreateTable("t", schema).ok());
    Rng rng(7);
    EXPECT_TRUE(
        dep.LoadRows("t", workload::GenerateRows(schema, 2000, rng)).ok());
    dep.RunFor(15 * kSecond);
    dep.Query(cubrick::QueryRequest(CountQuery("t")));
    return ExportMetricsText(dep);
  };
  std::string text = run();

  // Pre-registry lines survive.
  EXPECT_NE(text.find("scalewall_fleet_servers{state=\"healthy\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_catalog_tables 1"), std::string::npos);
  EXPECT_NE(text.find("scalewall_sm_assigned_shards{region=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_engine_partial_queries_total"),
            std::string::npos);
  // Registry-rendered series from every migrated layer.
  EXPECT_NE(text.find("scalewall_proxy_queries_total{result=\"submitted\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_proxy_queries_total{result=\"succeeded\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_proxy_query_latency_ms{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_sm_placements_total{region=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_server_partial_queries_total{server=\""),
            std::string::npos);
  EXPECT_NE(
      text.find("scalewall_exec_morsels_total{result=\"executed\",server=\""),
      std::string::npos);

  // Same seed, same operations => byte-identical export.
  EXPECT_EQ(text, run());
}

TEST(QueryTracingTest, ExecPoolCountersExportedWhenPoolPresent) {
  Deployment dep(TracedOptions(/*seed=*/43));  // scan_workers = 2
  cubrick::TableSchema schema = workload::MakeSchema(2, 64, 8, 1);
  ASSERT_TRUE(dep.CreateTable("t", schema).ok());
  Rng rng(7);
  ASSERT_TRUE(dep.LoadRows("t", workload::GenerateRows(schema, 4000, rng)).ok());
  dep.RunFor(15 * kSecond);
  ASSERT_TRUE(dep.Query(cubrick::QueryRequest(CountQuery("t"))).status.ok());

  std::string text = ExportMetricsText(dep);
  EXPECT_NE(text.find("scalewall_exec_pool_tasks_submitted_total{server=\""),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_exec_pool_tasks_executed_total{server=\""),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_exec_pool_queue_depth{server=\""),
            std::string::npos);
  EXPECT_NE(text.find("scalewall_exec_pool_steals_total{server=\""),
            std::string::npos);
}

}  // namespace
}  // namespace scalewall::core
