// Unit tests for the discrete-event simulation engine and the latency /
// failure models.

#include <gtest/gtest.h>

#include <vector>

#include "common/histogram.h"
#include "sim/latency_model.h"
#include "sim/simulation.h"

namespace scalewall::sim {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation sim(1);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim(1);
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulationTest, TiesRunInSchedulingOrder) {
  Simulation sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, ScheduleAfterUsesCurrentTime) {
  Simulation sim(1);
  SimTime inner = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { inner = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(inner, 150);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim(1);
  bool ran = false;
  EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelFromInsideEvent) {
  Simulation sim(1);
  bool ran = false;
  EventId victim = sim.ScheduleAt(20, [&] { ran = true; });
  sim.ScheduleAt(10, [&] { sim.Cancel(victim); });
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, PeriodicFiresRepeatedly) {
  Simulation sim(1);
  int fires = 0;
  sim.SchedulePeriodic(10, 10, [&] { ++fires; });
  sim.RunUntil(95);
  EXPECT_EQ(fires, 9);  // t=10..90
  EXPECT_EQ(sim.now(), 95);
}

TEST(SimulationTest, PeriodicCancelStops) {
  Simulation sim(1);
  int fires = 0;
  EventId id = sim.SchedulePeriodic(10, 10, [&] { ++fires; });
  sim.ScheduleAt(35, [&] { sim.Cancel(id); });
  sim.RunUntil(200);
  EXPECT_EQ(fires, 3);  // t=10,20,30
}

TEST(SimulationTest, PeriodicCanCancelItself) {
  Simulation sim(1);
  int fires = 0;
  EventId id = 0;
  id = sim.SchedulePeriodic(10, 10, [&] {
    if (++fires == 2) sim.Cancel(id);
  });
  sim.RunUntil(500);
  EXPECT_EQ(fires, 2);
}

TEST(SimulationTest, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim(1);
  sim.RunUntil(1234);
  EXPECT_EQ(sim.now(), 1234);
}

TEST(SimulationTest, RunForIsRelative) {
  Simulation sim(1);
  sim.RunFor(100);
  sim.RunFor(100);
  EXPECT_EQ(sim.now(), 200);
}

TEST(SimulationTest, StepExecutesSingleEvent) {
  Simulation sim(1);
  int count = 0;
  sim.ScheduleAt(10, [&] { ++count; });
  sim.ScheduleAt(20, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationTest, EventsScheduledDuringRunExecute) {
  Simulation sim(1);
  std::vector<SimTime> times;
  std::function<void(int)> chain = [&](int depth) {
    times.push_back(sim.now());
    if (depth < 5) {
      sim.ScheduleAfter(7, [&chain, depth] { chain(depth + 1); });
    }
  };
  sim.ScheduleAt(0, [&] { chain(0); });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{0, 7, 14, 21, 28, 35}));
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    std::vector<uint64_t> draws;
    sim.SchedulePeriodic(5, 5, [&] {
      draws.push_back(sim.rng().Next());
      if (draws.size() >= 20) return;
    });
    sim.RunUntil(200);
    return draws;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

// --- latency model ---

TEST(LatencyModelTest, SamplesPositiveAndCapped) {
  LatencyModelOptions options;
  options.max = 2 * kSecond;
  LatencyModel model(options);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    SimDuration v = model.Sample(rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, options.max);
  }
}

TEST(LatencyModelTest, MedianNearConfigured) {
  LatencyModelOptions options;
  options.median = 20 * kMillisecond;
  options.tail_probability = 0;  // body only
  LatencyModel model(options);
  Rng rng(1);
  Histogram h;
  for (int i = 0; i < 50000; ++i) {
    h.Add(static_cast<double>(model.Sample(rng)));
  }
  EXPECT_NEAR(h.P50(), static_cast<double>(options.median),
              static_cast<double>(options.median) * 0.05);
}

TEST(LatencyModelTest, TailProbabilityInflatesHighPercentiles) {
  LatencyModelOptions no_tail;
  no_tail.tail_probability = 0;
  LatencyModelOptions tail;
  tail.tail_probability = 0.05;
  Rng rng1(1), rng2(1);
  Histogram h1, h2;
  for (int i = 0; i < 50000; ++i) {
    h1.Add(static_cast<double>(LatencyModel(no_tail).Sample(rng1)));
    h2.Add(static_cast<double>(LatencyModel(tail).Sample(rng2)));
  }
  EXPECT_GT(h2.P99(), h1.P99() * 2);
  // Medians stay comparable: the tail affects only the upper quantiles.
  EXPECT_NEAR(h2.P50(), h1.P50(), h1.P50() * 0.1);
}

TEST(NetworkModelTest, CrossRegionAddsWanComponent) {
  NetworkModel model;
  Rng rng(1);
  RunningStat local, cross;
  for (int i = 0; i < 10000; ++i) {
    local.Add(static_cast<double>(model.SampleHop(rng, false)));
    cross.Add(static_cast<double>(model.SampleHop(rng, true)));
  }
  EXPECT_GT(cross.mean(), local.mean() + 25.0 * kMillisecond);
}

TEST(TransientFailureModelTest, FrequencyMatchesProbability) {
  TransientFailureModel model(0.01);
  Rng rng(1);
  int failures = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (model.Fails(rng)) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.01, 0.002);
}

TEST(TransientFailureModelTest, AnalyticSuccessFormula) {
  TransientFailureModel model(0.0001);
  EXPECT_DOUBLE_EQ(model.AnalyticSuccess(0), 1.0);
  EXPECT_NEAR(model.AnalyticSuccess(1), 0.9999, 1e-12);
  EXPECT_NEAR(model.AnalyticSuccess(100), 0.99004933, 1e-6);
}

}  // namespace
}  // namespace scalewall::sim
