// Unit tests for the Shard Manager: registration, placement, replication
// models, spread constraints, non-retryable rejections, heartbeat-driven
// failover, drains, graceful migration, and load balancing.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "discovery/datastore.h"
#include "discovery/service_discovery.h"
#include "sim/simulation.h"
#include "sm/app_server.h"
#include "sm/sm_client.h"
#include "sm/sm_server.h"

namespace scalewall::sm {
namespace {

// A scriptable application server for exercising SmServer.
class MockAppServer : public AppServer {
 public:
  explicit MockAppServer(cluster::ServerId id) : id_(id) {}

  cluster::ServerId server_id() const override { return id_; }

  Status AddShard(ShardId shard, ShardRole role) override {
    if (reject_all_) return Status::NonRetryable("scripted rejection");
    if (rejected_shards_.count(shard) > 0) {
      return Status::NonRetryable("scripted rejection for shard");
    }
    shards_[shard] = role;
    log_.push_back("add:" + std::to_string(shard));
    return Status::Ok();
  }

  Status DropShard(ShardId shard) override {
    shards_.erase(shard);
    staged_.erase(shard);
    log_.push_back("drop:" + std::to_string(shard));
    return Status::Ok();
  }

  Status PrepareAddShard(ShardId shard, cluster::ServerId from) override {
    if (reject_all_ || rejected_shards_.count(shard) > 0) {
      return Status::NonRetryable("scripted rejection");
    }
    staged_.insert(shard);
    log_.push_back("prepare_add:" + std::to_string(shard) + ":from" +
                   std::to_string(from));
    return Status::Ok();
  }

  Status PrepareDropShard(ShardId shard, cluster::ServerId to) override {
    log_.push_back("prepare_drop:" + std::to_string(shard) + ":to" +
                   std::to_string(to));
    return Status::Ok();
  }

  double ShardLoad(ShardId shard, std::string_view) const override {
    auto it = loads_.find(shard);
    if (it != loads_.end()) return it->second;
    return shards_.count(shard) > 0 ? default_load_ : 0.0;
  }

  double Capacity(std::string_view) const override { return capacity_; }

  // Scripting knobs.
  void set_capacity(double c) { capacity_ = c; }
  void set_default_load(double l) { default_load_ = l; }
  void set_shard_load(ShardId s, double l) { loads_[s] = l; }
  void reject_all() { reject_all_ = true; }
  void reject_shard(ShardId s) { rejected_shards_.insert(s); }

  bool Hosts(ShardId s) const { return shards_.count(s) > 0; }
  size_t num_shards() const { return shards_.size(); }
  const std::vector<std::string>& log() const { return log_; }

 private:
  cluster::ServerId id_;
  double capacity_ = 1000.0;
  double default_load_ = 10.0;
  bool reject_all_ = false;
  std::set<ShardId> rejected_shards_;
  std::map<ShardId, ShardRole> shards_;
  std::set<ShardId> staged_;
  std::map<ShardId, double> loads_;
  std::vector<std::string> log_;
};

class SmServerTest : public ::testing::Test {
 protected:
  SmServerTest()
      : sim_(11),
        cluster_(cluster::Cluster::Build({.regions = 1,
                                          .racks_per_region = 4,
                                          .servers_per_rack = 2})),
        datastore_(&sim_, /*session_timeout=*/15 * kSecond),
        sd_(&sim_) {}

  std::unique_ptr<SmServer> MakeServer(ServiceConfig config,
                                       SmServerOptions options = {}) {
    config.name = "test_service";
    config.max_shards = 1000;
    config.heartbeat_interval = 5 * kSecond;
    return std::make_unique<SmServer>(&sim_, &cluster_, &datastore_, &sd_,
                                      config, options);
  }

  // Registers one mock per cluster server.
  void RegisterAll(SmServer& sm) {
    for (cluster::ServerId id : cluster_.AllServers()) {
      apps_.push_back(std::make_unique<MockAppServer>(id));
      ASSERT_TRUE(sm.RegisterAppServer(apps_.back().get()).ok());
    }
  }

  MockAppServer* app(cluster::ServerId id) {
    for (auto& a : apps_) {
      if (a->server_id() == id) return a.get();
    }
    return nullptr;
  }

  sim::Simulation sim_;
  cluster::Cluster cluster_;
  discovery::Datastore datastore_;
  discovery::ServiceDiscovery sd_;
  std::vector<std::unique_ptr<MockAppServer>> apps_;
};

TEST_F(SmServerTest, RegisterRejectsDuplicatesAndUnknownHosts) {
  auto sm = MakeServer({});
  MockAppServer a(0);
  EXPECT_TRUE(sm->RegisterAppServer(&a).ok());
  EXPECT_EQ(sm->RegisterAppServer(&a).code(), StatusCode::kAlreadyExists);
  MockAppServer ghost(999);
  EXPECT_EQ(sm->RegisterAppServer(&ghost).code(), StatusCode::kNotFound);
  sm->UnregisterAppServer(0);
  EXPECT_TRUE(sm->RegisterAppServer(&a).ok());
}

TEST_F(SmServerTest, EnsureShardPlacesPrimaryOnly) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(7).ok());
  const ShardAssignment* assignment = sm->GetAssignment(7);
  ASSERT_NE(assignment, nullptr);
  ASSERT_EQ(assignment->replicas.size(), 1u);
  EXPECT_EQ(assignment->replicas[0].role, ShardRole::kPrimary);
  EXPECT_TRUE(app(assignment->replicas[0].server)->Hosts(7));
  // Idempotent.
  ASSERT_TRUE(sm->EnsureShard(7).ok());
  EXPECT_EQ(sm->GetAssignment(7)->replicas.size(), 1u);
  EXPECT_EQ(sm->stats().placements, 1);
}

TEST_F(SmServerTest, EnsureShardRejectsOutOfKeySpace) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  EXPECT_EQ(sm->EnsureShard(100000).code(), StatusCode::kInvalidArgument);
}

TEST_F(SmServerTest, PublishesAssignmentToDiscovery) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(7).ok());
  auto resolved = sd_.ResolveAuthoritative("test_service", 7);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, sm->GetAssignment(7)->replicas[0].server);
}

TEST_F(SmServerTest, PrimarySecondaryReplicationPlacesAllReplicas) {
  ServiceConfig config;
  config.replication = ReplicationModel::kPrimarySecondary;
  config.replication_factor = 2;
  auto sm = MakeServer(config);
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(3).ok());
  const ShardAssignment* assignment = sm->GetAssignment(3);
  ASSERT_EQ(assignment->replicas.size(), 3u);
  int primaries = 0;
  std::set<cluster::ServerId> servers;
  for (const Replica& r : assignment->replicas) {
    if (r.role == ShardRole::kPrimary) ++primaries;
    servers.insert(r.server);
  }
  EXPECT_EQ(primaries, 1);
  EXPECT_EQ(servers.size(), 3u);  // spread across distinct servers
}

TEST_F(SmServerTest, SecondaryOnlyReplication) {
  ServiceConfig config;
  config.replication = ReplicationModel::kSecondaryOnly;
  config.replication_factor = 2;
  auto sm = MakeServer(config);
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(3).ok());
  const ShardAssignment* assignment = sm->GetAssignment(3);
  ASSERT_EQ(assignment->replicas.size(), 3u);
  for (const Replica& r : assignment->replicas) {
    EXPECT_EQ(r.role, ShardRole::kSecondary);
  }
}

TEST_F(SmServerTest, RackSpreadConstraint) {
  ServiceConfig config;
  config.replication = ReplicationModel::kSecondaryOnly;
  config.replication_factor = 2;
  config.spread = SpreadDomain::kRack;
  auto sm = MakeServer(config);
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(3).ok());
  std::set<cluster::RackId> racks;
  for (const Replica& r : sm->GetAssignment(3)->replicas) {
    racks.insert(cluster_.Get(r.server).rack);
  }
  EXPECT_EQ(racks.size(), 3u);
}

TEST_F(SmServerTest, SpreadImpossibleFailsPlacement) {
  // 4 racks but replication needs 5 distinct racks.
  ServiceConfig config;
  config.replication = ReplicationModel::kSecondaryOnly;
  config.replication_factor = 4;
  config.spread = SpreadDomain::kRack;
  auto sm = MakeServer(config);
  RegisterAll(*sm);
  EXPECT_EQ(sm->EnsureShard(3).code(), StatusCode::kResourceExhausted);
  // Rolled back: nothing assigned, no replicas left behind.
  EXPECT_EQ(sm->GetAssignment(3), nullptr);
  for (auto& a : apps_) EXPECT_EQ(a->num_shards(), 0u);
}

TEST_F(SmServerTest, NonRetryableRejectionTriesOtherServers) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  // Script every server except id 5 to reject shard 9 (collision).
  for (auto& a : apps_) {
    if (a->server_id() != 5) a->reject_shard(9);
  }
  ASSERT_TRUE(sm->EnsureShard(9).ok());
  EXPECT_EQ(sm->GetAssignment(9)->replicas[0].server, 5u);
  EXPECT_GT(sm->stats().placement_rejections, 0);
}

TEST_F(SmServerTest, AllServersRejectingExhaustsPlacement) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  for (auto& a : apps_) a->reject_all();
  EXPECT_EQ(sm->EnsureShard(9).code(), StatusCode::kResourceExhausted);
}

TEST_F(SmServerTest, PlacementPrefersLeastUtilizedServer) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  // Preload every server except 2 with heavy shards.
  for (auto& a : apps_) {
    a->set_default_load(100.0);
    a->set_capacity(1000.0);
  }
  for (ShardId s = 100; s < 130; ++s) {
    ASSERT_TRUE(sm->EnsureShard(s).ok());
  }
  // Shards must be spread around: no server hugely overloaded.
  size_t max_shards = 0;
  for (auto& a : apps_) max_shards = std::max(max_shards, a->num_shards());
  EXPECT_LE(max_shards, 6u);
}

TEST_F(SmServerTest, CapacityLimitBlocksOverfill) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  for (auto& a : apps_) {
    a->set_default_load(100.0);
    a->set_capacity(300.0);  // max ~2 shards per server (95% cap)
  }
  // A new shard is assumed empty at placement time (its weight is not
  // yet known), so a server qualifies while its *existing* load stays
  // under 95% of capacity: up to 3 shards per server (300/300 would
  // exceed it for the 4th). 8 servers x 3 = 24; the rest must fail.
  int placed = 0;
  for (ShardId s = 0; s < 30; ++s) {
    if (sm->EnsureShard(s).ok()) ++placed;
  }
  EXPECT_EQ(placed, 24);
  EXPECT_EQ(sm->EnsureShard(31).code(), StatusCode::kResourceExhausted);
}

TEST_F(SmServerTest, EagerPlacementFillsKeySpace) {
  ServiceConfig config;
  config.lazy_placement = false;
  auto sm = MakeServer(config);
  RegisterAll(*sm);
  // Empty shards weigh next to nothing; placement must not be capacity
  // bound. MakeServer fixes max_shards at 1000.
  for (auto& a : apps_) a->set_default_load(0.5);
  sm->Start();
  EXPECT_EQ(sm->num_assigned_shards(), 1000u);
  // Every shard resolvable, and roughly evenly spread over 8 servers.
  size_t min_shards = 10000, max_shards = 0;
  for (auto& a : apps_) {
    min_shards = std::min(min_shards, a->num_shards());
    max_shards = std::max(max_shards, a->num_shards());
  }
  EXPECT_GE(min_shards, 100u);
  EXPECT_LE(max_shards, 150u);
}

TEST_F(SmServerTest, HeartbeatExpiryTriggersFailover) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(7).ok());
  cluster::ServerId victim = sm->GetAssignment(7)->replicas[0].server;
  // Heartbeats only run once Start()-like periodic tasks fire; they were
  // armed at registration. Kill the host: heartbeats stop, session
  // expires, SM fails the shard over.
  cluster_.SetHealth(victim, cluster::ServerHealth::kDown);
  sim_.RunFor(2 * kMinute);
  const ShardAssignment* assignment = sm->GetAssignment(7);
  ASSERT_NE(assignment, nullptr);
  ASSERT_EQ(assignment->replicas.size(), 1u);
  EXPECT_NE(assignment->replicas[0].server, victim);
  EXPECT_EQ(sm->stats().failovers, 1);
  // Discovery now points at the new server.
  EXPECT_EQ(*sd_.ResolveAuthoritative("test_service", 7),
            assignment->replicas[0].server);
}

TEST_F(SmServerTest, HealthyServersKeepHeartbeating) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(7).ok());
  cluster::ServerId owner = sm->GetAssignment(7)->replicas[0].server;
  sim_.RunFor(10 * kMinute);
  EXPECT_EQ(sm->GetAssignment(7)->replicas[0].server, owner);
  EXPECT_EQ(sm->stats().failovers, 0);
}

TEST_F(SmServerTest, DrainMigratesShardsGracefully) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  for (ShardId s = 0; s < 8; ++s) ASSERT_TRUE(sm->EnsureShard(s).ok());
  // Find a server hosting at least one shard and drain it.
  cluster::ServerId victim = sm->GetAssignment(0)->replicas[0].server;
  cluster_.SetHealth(victim, cluster::ServerHealth::kDraining);
  sim_.RunFor(5 * kMinute);
  EXPECT_TRUE(sm->ShardsOnServer(victim).empty());
  for (ShardId s = 0; s < 8; ++s) {
    const ShardAssignment* assignment = sm->GetAssignment(s);
    ASSERT_EQ(assignment->replicas.size(), 1u);
    EXPECT_NE(assignment->replicas[0].server, victim);
  }
  EXPECT_GT(sm->stats().drain_migrations, 0);
  EXPECT_EQ(sm->stats().failovers, 0);
  // The drained app server saw the graceful endpoint sequence.
  bool saw_prepare_drop = false;
  for (const std::string& entry : app(victim)->log()) {
    if (entry.rfind("prepare_drop:0", 0) == 0) saw_prepare_drop = true;
  }
  EXPECT_TRUE(saw_prepare_drop);
}

TEST_F(SmServerTest, GracefulMigrationEndpointOrder) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(1).ok());
  cluster::ServerId from = sm->GetAssignment(1)->replicas[0].server;
  ASSERT_TRUE(sm->RequestMigration(1, from, MigrationReason::kManual).ok());
  sim_.RunFor(1 * kMinute);
  const ShardAssignment* assignment = sm->GetAssignment(1);
  cluster::ServerId to = assignment->replicas[0].server;
  EXPECT_NE(to, from);
  // Target saw prepare_add then add.
  const auto& to_log = app(to)->log();
  auto prepare_pos = std::find(to_log.begin(), to_log.end(),
                               "prepare_add:1:from" + std::to_string(from));
  auto add_pos = std::find(to_log.begin(), to_log.end(), "add:1");
  ASSERT_NE(prepare_pos, to_log.end());
  ASSERT_NE(add_pos, to_log.end());
  EXPECT_LT(prepare_pos, add_pos);
  // Source saw prepare_drop then (delayed) drop, and no longer hosts.
  const auto& from_log = app(from)->log();
  EXPECT_NE(std::find(from_log.begin(), from_log.end(),
                      "prepare_drop:1:to" + std::to_string(to)),
            from_log.end());
  EXPECT_NE(std::find(from_log.begin(), from_log.end(), "drop:1"),
            from_log.end());
  EXPECT_FALSE(app(from)->Hosts(1));
  EXPECT_TRUE(app(to)->Hosts(1));
  EXPECT_EQ(sm->stats().live_migrations, 1);
}

TEST_F(SmServerTest, MigrationOfUnknownShardFails) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  EXPECT_EQ(sm->RequestMigration(5, 0, MigrationReason::kManual).code(),
            StatusCode::kNotFound);
}

TEST_F(SmServerTest, MigrationRetriesPastCollidingTarget) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(1).ok());
  cluster::ServerId from = sm->GetAssignment(1)->replicas[0].server;
  // Every other server rejects shard 1 except exactly one.
  cluster::ServerId haven = (from + 1) % 8;
  for (auto& a : apps_) {
    if (a->server_id() != from && a->server_id() != haven) {
      a->reject_shard(1);
    }
  }
  ASSERT_TRUE(sm->RequestMigration(1, from, MigrationReason::kManual).ok());
  sim_.RunFor(2 * kMinute);
  EXPECT_EQ(sm->GetAssignment(1)->replicas[0].server, haven);
}

TEST_F(SmServerTest, LoadBalancerEvensOutUtilization) {
  ServiceConfig config;
  config.load_balancing.imbalance_threshold = 0.05;
  config.load_balancing.max_migrations_per_run = 4;
  auto sm = MakeServer(config);
  RegisterAll(*sm);
  for (auto& a : apps_) {
    a->set_capacity(1000.0);
    a->set_default_load(50.0);
  }
  for (ShardId s = 0; s < 16; ++s) ASSERT_TRUE(sm->EnsureShard(s).ok());
  // Make one server's shards suddenly hot.
  cluster::ServerId hot = sm->GetAssignment(0)->replicas[0].server;
  for (ShardId s : sm->ShardsOnServer(hot)) {
    app(hot)->set_shard_load(s, 400.0);
  }
  int migrations = sm->RunLoadBalancer();
  EXPECT_GT(migrations, 0);
  EXPECT_LE(migrations, 4);  // throttled
  sim_.RunFor(2 * kMinute);
  // The hot server must have shed at least one shard.
  EXPECT_LT(sm->ShardsOnServer(hot).size(), 3u);
  EXPECT_GT(sm->stats().lb_migrations, 0);
}

TEST_F(SmServerTest, LoadBalancerRespectsThreshold) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  for (auto& a : apps_) {
    a->set_capacity(1000.0);
    a->set_default_load(10.0);
  }
  for (ShardId s = 0; s < 16; ++s) ASSERT_TRUE(sm->EnsureShard(s).ok());
  sim_.RunFor(1 * kMinute);
  // Balanced cluster: no migrations needed.
  EXPECT_EQ(sm->RunLoadBalancer(), 0);
}

TEST_F(SmServerTest, TargetDeathMidMigrationAborts) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  // A heavy shard so the data-copy phase takes ~25s of simulated time.
  for (auto& a : apps_) a->set_capacity(1e10);
  ASSERT_TRUE(sm->EnsureShard(1).ok());
  cluster::ServerId from = sm->GetAssignment(1)->replicas[0].server;
  app(from)->set_shard_load(1, 5e9);
  ASSERT_TRUE(sm->RequestMigration(1, from, MigrationReason::kManual).ok());
  // Let the prepare step start, then kill whichever target was chosen.
  sim_.RunFor(200 * kMillisecond);
  cluster::ServerId to = kInvalidShard;
  for (auto& a : apps_) {
    if (a->server_id() != from) {
      for (const std::string& entry : a->log()) {
        if (entry.rfind("prepare_add:1", 0) == 0) to = a->server_id();
      }
    }
  }
  ASSERT_NE(to, static_cast<cluster::ServerId>(kInvalidShard));
  cluster_.SetHealth(to, cluster::ServerHealth::kDown);
  sim_.RunFor(5 * kMinute);
  // The shard must end up somewhere healthy — either the migration
  // aborted (stays on `from`) or the failover machinery re-placed it.
  const ShardAssignment* assignment = sm->GetAssignment(1);
  ASSERT_NE(assignment, nullptr);
  ASSERT_EQ(assignment->replicas.size(), 1u);
  EXPECT_NE(assignment->replicas[0].server, to);
  EXPECT_TRUE(cluster_.Get(assignment->replicas[0].server).IsServing());
  // No leaked copies: only the final owner hosts the shard.
  int holders = 0;
  for (auto& a : apps_) {
    if (a->Hosts(1)) ++holders;
  }
  EXPECT_EQ(holders, 1);
}

TEST_F(SmServerTest, SourceDeathMidMigrationFailsOver) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  for (auto& a : apps_) a->set_capacity(1e10);
  ASSERT_TRUE(sm->EnsureShard(1).ok());
  cluster::ServerId from = sm->GetAssignment(1)->replicas[0].server;
  app(from)->set_shard_load(1, 5e9);  // ~25s copy phase
  ASSERT_TRUE(sm->RequestMigration(1, from, MigrationReason::kManual).ok());
  sim_.RunFor(200 * kMillisecond);
  cluster_.SetHealth(from, cluster::ServerHealth::kDown);
  sim_.RunFor(5 * kMinute);
  const ShardAssignment* assignment = sm->GetAssignment(1);
  ASSERT_NE(assignment, nullptr);
  ASSERT_EQ(assignment->replicas.size(), 1u);
  EXPECT_NE(assignment->replicas[0].server, from);
  EXPECT_GE(sm->stats().failovers, 1);
  // Exactly one *live* holder (the dead source's memory image lingers in
  // the mock; a real host wipes it on restart — Deployment::Reset path).
  int holders = 0;
  for (auto& a : apps_) {
    if (a->Hosts(1) && cluster_.Get(a->server_id()).IsServing()) ++holders;
  }
  EXPECT_EQ(holders, 1);
}

TEST_F(SmServerTest, MigrationsPerDayRecorded) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(1).ok());
  cluster::ServerId from = sm->GetAssignment(1)->replicas[0].server;
  ASSERT_TRUE(sm->RequestMigration(1, from, MigrationReason::kManual).ok());
  sim_.RunFor(1 * kMinute);
  int64_t total = 0;
  for (const auto& [day, count] : sm->stats().migrations_per_day) {
    total += count;
  }
  EXPECT_EQ(total, 1);
}

TEST_F(SmServerTest, UtilizationReportsLoadOverCapacity) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  for (auto& a : apps_) {
    a->set_capacity(200.0);
    a->set_default_load(50.0);
  }
  ASSERT_TRUE(sm->EnsureShard(1).ok());
  cluster::ServerId owner = sm->GetAssignment(1)->replicas[0].server;
  auto utilization = sm->Utilization();
  EXPECT_DOUBLE_EQ(utilization[owner], 0.25);
}

TEST_F(SmServerTest, HeterogeneousServersGetProportionalLoad) {
  // "SM allows application servers to export the total capacity for a
  // particular host" — a big host should absorb proportionally more
  // shards than small ones.
  auto sm = MakeServer({});
  RegisterAll(*sm);
  for (auto& a : apps_) {
    a->set_capacity(a->server_id() == 0 ? 4000.0 : 1000.0);
    a->set_default_load(100.0);
  }
  for (ShardId s = 0; s < 40; ++s) sm->EnsureShard(s);
  size_t big = app(0)->num_shards();
  size_t total_small = 0;
  for (auto& a : apps_) {
    if (a->server_id() != 0) total_small += a->num_shards();
  }
  // The big host should hold several times the average small host.
  EXPECT_GT(big, total_small / 7 * 2);
}

TEST_F(SmServerTest, DynamicCapacityChangeShiftsBalancing) {
  // "SM also allows application servers to periodically export (and
  // change) the current capacity of a host": shrinking a host's capacity
  // turns it into the hottest host and the balancer drains it.
  ServiceConfig config;
  config.load_balancing.imbalance_threshold = 0.05;
  auto sm = MakeServer(config);
  RegisterAll(*sm);
  for (auto& a : apps_) {
    a->set_capacity(1000.0);
    a->set_default_load(50.0);
  }
  for (ShardId s = 0; s < 24; ++s) ASSERT_TRUE(sm->EnsureShard(s).ok());
  size_t before = app(2)->num_shards();
  app(2)->set_capacity(120.0);  // now badly over-utilized
  sm->RunLoadBalancer();
  sim_.RunFor(2 * kMinute);
  EXPECT_LT(app(2)->num_shards(), before);
}

TEST_F(SmServerTest, RegionSpreadAcrossMultiRegionService) {
  // A single SM service spanning regions with kRegion spread: replicas
  // of one shard land in distinct regions (the conceptual secondary-only
  // model of Section IV-D).
  cluster_ = cluster::Cluster::Build(
      {.regions = 3, .racks_per_region = 2, .servers_per_rack = 2});
  ServiceConfig config;
  config.replication = ReplicationModel::kSecondaryOnly;
  config.replication_factor = 2;
  config.spread = SpreadDomain::kRegion;
  auto sm = MakeServer(config);
  apps_.clear();
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(5).ok());
  std::set<cluster::RegionId> regions;
  for (const Replica& r : sm->GetAssignment(5)->replicas) {
    regions.insert(cluster_.Get(r.server).region);
  }
  EXPECT_EQ(regions.size(), 3u);
}

TEST_F(SmServerTest, AssignmentsPersistedToDatastore) {
  ServiceConfig config;
  config.replication = ReplicationModel::kPrimarySecondary;
  config.replication_factor = 1;
  auto sm = MakeServer(config);
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(7).ok());
  auto persisted = sm->LoadPersistedAssignment(7);
  ASSERT_TRUE(persisted.ok()) << persisted.status();
  const ShardAssignment* live = sm->GetAssignment(7);
  ASSERT_EQ(persisted->replicas.size(), live->replicas.size());
  for (size_t i = 0; i < live->replicas.size(); ++i) {
    EXPECT_EQ(persisted->replicas[i], live->replicas[i]);
  }
  EXPECT_EQ(sm->LoadPersistedAssignment(99).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SmServerTest, PersistedAssignmentFollowsMigration) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(3).ok());
  cluster::ServerId from = sm->GetAssignment(3)->replicas[0].server;
  ASSERT_TRUE(sm->RequestMigration(3, from, MigrationReason::kManual).ok());
  sim_.RunFor(1 * kMinute);
  auto persisted = sm->LoadPersistedAssignment(3);
  ASSERT_TRUE(persisted.ok());
  ASSERT_EQ(persisted->replicas.size(), 1u);
  EXPECT_EQ(persisted->replicas[0].server,
            sm->GetAssignment(3)->replicas[0].server);
  EXPECT_NE(persisted->replicas[0].server, from);
}

TEST_F(SmServerTest, SmClientResolvesAfterPropagation) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(7).ok());
  sim_.RunFor(1 * kMinute);
  SmClient client(&sd_, &cluster_, /*viewer=*/3);
  auto got = client.ResolveServing("test_service", 7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, sm->GetAssignment(7)->replicas[0].server);
}

TEST_F(SmServerTest, SmClientReportsDeadMappedServer) {
  auto sm = MakeServer({});
  RegisterAll(*sm);
  ASSERT_TRUE(sm->EnsureShard(7).ok());
  sim_.RunFor(1 * kMinute);
  cluster::ServerId owner = sm->GetAssignment(7)->replicas[0].server;
  // Kill the owner; before failover republishes, clients see UNAVAILABLE
  // (mapped-but-dead), which is their signal to retry elsewhere.
  cluster_.SetHealth(owner, cluster::ServerHealth::kDown);
  SmClient client(&sd_, &cluster_, /*viewer=*/3);
  EXPECT_EQ(client.ResolveServing("test_service", 7).status().code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace scalewall::sm
