// Unit tests for the scalewall::vec kernel library (ISSUE 6): selection
// vector filter kernels, IN probe structures, join probes, mixed-radix
// and hashed group-slot computation, and the templated accumulation
// kernels — each checked against a straightforward scalar reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "cubrick/query.h"
#include "vec/agg.h"
#include "vec/filter.h"
#include "vec/group.h"
#include "vec/selvec.h"

namespace scalewall::vec {
namespace {

using cubrick::AggState;

TEST(SelVecTest, IotaCoversRange) {
  SelVec sel;
  SelIota(3, 7, sel);
  EXPECT_EQ(sel, (SelVec{3, 4, 5, 6}));
  SelIota(5, 5, sel);
  EXPECT_TRUE(sel.empty());
}

TEST(FilterKernelTest, RangeInitMatchesScalar) {
  Rng rng(7);
  std::vector<uint32_t> col(1000);
  for (auto& v : col) v = static_cast<uint32_t>(rng.NextBounded(100));
  SelVec sel;
  SelRangeInit(col.data(), 100, 900, 20, 60, sel);
  SelVec expect;
  for (RowIndex i = 100; i < 900; ++i) {
    if (col[i] >= 20 && col[i] <= 60) expect.push_back(i);
  }
  EXPECT_EQ(sel, expect);
}

TEST(FilterKernelTest, RangeInitFullDomainAndEmpty) {
  std::vector<uint32_t> col = {0, 5, 4294967295u, 7};
  SelVec sel;
  // lo=0, hi=UINT32_MAX admits everything (the unsigned-wrap compare
  // must not reject boundary values).
  SelRangeInit(col.data(), 0, 4, 0, 4294967295u, sel);
  EXPECT_EQ(sel, (SelVec{0, 1, 2, 3}));
  // An impossible band admits nothing.
  SelRangeInit(col.data(), 0, 4, 100, 200, sel);
  EXPECT_TRUE(sel.empty());
}

TEST(FilterKernelTest, RangeRefineCompactsInPlace) {
  std::vector<uint32_t> col = {9, 1, 5, 5, 2, 8};
  SelVec sel = {0, 2, 3, 4};  // pre-selected rows
  SelRangeRefine(col.data(), 2, 6, sel);
  EXPECT_EQ(sel, (SelVec{2, 3, 4}));
}

TEST(InSetTest, BitsetModeMatchesLinearFind) {
  Rng rng(11);
  std::vector<uint32_t> values;
  for (int i = 0; i < 10; ++i) {
    values.push_back(static_cast<uint32_t>(rng.NextBounded(64)));
  }
  values.push_back(200);  // beyond the domain: can never match a stored row
  InSet set(values, /*domain=*/64);
  EXPECT_TRUE(set.use_bitset());
  for (uint32_t v = 0; v < 70; ++v) {
    const bool expect =
        v < 64 &&
        std::find(values.begin(), values.end(), v) != values.end();
    EXPECT_EQ(set.Contains(v), expect) << v;
  }
}

TEST(InSetTest, SortedModeMatchesLinearFind) {
  std::vector<uint32_t> values = {7, 3, 3, 4000000000u, 7, 12};
  InSet set(values, /*domain=*/4294967295u);  // too big for a bitset
  EXPECT_FALSE(set.use_bitset());
  for (uint32_t v : {0u, 3u, 4u, 7u, 12u, 4000000000u, 13u}) {
    const bool expect =
        std::find(values.begin(), values.end(), v) != values.end();
    EXPECT_EQ(set.Contains(v), expect) << v;
  }
}

TEST(FilterKernelTest, InInitAndRefine) {
  std::vector<uint32_t> col = {1, 2, 3, 4, 5, 2, 1};
  InSet set({2, 5}, 8);
  SelVec sel;
  SelInInit(col.data(), 0, 7, set, sel);
  EXPECT_EQ(sel, (SelVec{1, 4, 5}));
  SelVec refine = {0, 1, 2, 3};
  SelInRefine(col.data(), set, refine);
  EXPECT_EQ(refine, (SelVec{1}));
}

TEST(JoinKernelTest, JoinRangeRefineDropsUnmatchedAndOutOfDomain) {
  constexpr uint32_t kNone = static_cast<uint32_t>(-1);
  // attr[key]: key 0 -> 5, key 1 -> unset, key 2 -> 9; domain 3.
  std::vector<uint32_t> attr = {5, kNone, 9};
  std::vector<uint32_t> keys = {0, 1, 2, 3, 0};  // key 3 out of domain
  SelVec sel = {0, 1, 2, 3, 4};
  SelJoinRangeRefine(keys.data(), attr.data(), 3, kNone, 5, 8, sel);
  EXPECT_EQ(sel, (SelVec{0, 4}));  // only key 0 resolves to attr in [5,8]
}

TEST(JoinKernelTest, NullAttributeColumnMatchesNothing) {
  std::vector<uint32_t> keys = {0, 1};
  SelVec sel = {0, 1};
  SelJoinRangeRefine(keys.data(), nullptr, 3, static_cast<uint32_t>(-1), 0,
                     10, sel);
  EXPECT_TRUE(sel.empty());
}

TEST(JoinKernelTest, GatherKeepsParallelColumnsAligned) {
  constexpr uint32_t kNone = static_cast<uint32_t>(-1);
  std::vector<uint32_t> attr_a = {10, 11, kNone};
  std::vector<uint32_t> attr_b = {20, kNone, 22};
  std::vector<uint32_t> keys = {0, 1, 2, 0};
  SelVec sel = {0, 1, 2, 3};
  std::vector<uint32_t> got_a, got_b;
  GatherJoinAttribute(keys.data(), attr_a.data(), 3, kNone, sel, {}, got_a);
  EXPECT_EQ(sel, (SelVec{0, 1, 3}));  // key 2 had no attr_a
  EXPECT_EQ(got_a, (std::vector<uint32_t>{10, 11, 10}));
  GatherJoinAttribute(keys.data(), attr_b.data(), 3, kNone, sel, {&got_a},
                      got_b);
  EXPECT_EQ(sel, (SelVec{0, 3}));  // key 1 had no attr_b
  EXPECT_EQ(got_a, (std::vector<uint32_t>{10, 10}));  // stayed aligned
  EXPECT_EQ(got_b, (std::vector<uint32_t>{20, 20}));
}

TEST(DirectLayoutTest, StridesAndDecodeRoundTrip) {
  DirectLayout layout;
  ASSERT_TRUE(layout.Build({4, 3, 5}, 4096));
  EXPECT_EQ(layout.total_slots, 60u);
  // Last column is the least-significant digit.
  EXPECT_EQ(layout.strides, (std::vector<uint64_t>{15, 5, 1}));
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = 0; b < 3; ++b) {
      for (uint32_t c = 0; c < 5; ++c) {
        const uint64_t slot = a * 15 + b * 5 + c;
        uint32_t key[3];
        layout.DecodeSlot(slot, key);
        EXPECT_EQ(key[0], a);
        EXPECT_EQ(key[1], b);
        EXPECT_EQ(key[2], c);
      }
    }
  }
}

TEST(DirectLayoutTest, RejectsOversizedAndOverflowingSpaces) {
  DirectLayout layout;
  EXPECT_FALSE(layout.Build({65, 64}, 4096));  // 4160 > 4096
  EXPECT_TRUE(layout.Build({64, 64}, 4096));   // exactly the cap
  // A product that would overflow uint64 must be rejected, not wrapped.
  EXPECT_FALSE(layout.Build(
      {4294967295u, 4294967295u, 4294967295u},
      std::numeric_limits<uint64_t>::max()));
}

TEST(SlotKernelTest, MixedRadixSlotsMatchScalar) {
  DirectLayout layout;
  ASSERT_TRUE(layout.Build({4, 8}, 4096));
  std::vector<uint32_t> col0 = {0, 1, 2, 3, 1};
  std::vector<uint32_t> col1 = {7, 0, 3, 5, 5};
  SelVec rows = {0, 2, 4};
  std::vector<uint32_t> slots(rows.size(), 0);
  SlotAccumulate(col0.data(), rows.data(), rows.size(), layout.strides[0],
                 slots.data());
  SlotAccumulate(col1.data(), rows.data(), rows.size(), layout.strides[1],
                 slots.data());
  EXPECT_EQ(slots,
            (std::vector<uint32_t>{0 * 8 + 7, 2 * 8 + 3, 1 * 8 + 5}));

  std::vector<uint32_t> dense(5, 0);
  SlotAccumulateDense(col0.data(), 0, 5, layout.strides[0], dense.data());
  SlotAccumulateDense(col1.data(), 0, 5, layout.strides[1], dense.data());
  EXPECT_EQ(dense, (std::vector<uint32_t>{7, 8, 19, 29, 13}));

  std::vector<uint32_t> gathered_vals = {3, 1};
  std::vector<uint32_t> gslots = {1, 2};
  SlotAccumulateGathered(gathered_vals.data(), 2, 8, gslots.data());
  EXPECT_EQ(gslots, (std::vector<uint32_t>{25, 10}));
}

TEST(GroupKeyIndexTest, AssignsSlotsInFirstSeenOrder) {
  GroupKeyIndex index(2);
  const uint32_t k0[] = {1, 2};
  const uint32_t k1[] = {2, 1};
  const uint32_t k2[] = {1, 2};
  EXPECT_EQ(index.SlotFor(k0), 0u);
  EXPECT_EQ(index.SlotFor(k1), 1u);
  EXPECT_EQ(index.SlotFor(k2), 0u);  // same key, same slot
  EXPECT_EQ(index.num_slots(), 2u);
  EXPECT_EQ(index.KeyAt(1)[0], 2u);
  EXPECT_EQ(index.KeyAt(1)[1], 1u);
}

TEST(GroupKeyIndexTest, SurvivesRehashGrowth) {
  GroupKeyIndex index(3);
  Rng rng(3);
  std::vector<std::vector<uint32_t>> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back({static_cast<uint32_t>(rng.NextBounded(20)),
                    static_cast<uint32_t>(rng.NextBounded(20)),
                    static_cast<uint32_t>(rng.NextBounded(20))});
  }
  std::vector<uint32_t> slots;
  for (const auto& k : keys) slots.push_back(index.SlotFor(k.data()));
  // Every key maps back to the same slot after all the growth, and the
  // stored flat keys round-trip.
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(index.SlotFor(keys[i].data()), slots[i]);
    EXPECT_EQ(std::memcmp(index.KeyAt(slots[i]), keys[i].data(),
                          3 * sizeof(uint32_t)),
              0);
  }
}

TEST(AggKernelTest, AccumulateMatchesScalarAddSequence) {
  Rng rng(17);
  const size_t kRows = 300;
  std::vector<double> metric(kRows);
  for (auto& v : metric) v = rng.NextDouble() * 100 - 50;
  std::vector<uint32_t> group(kRows);
  for (auto& g : group) g = static_cast<uint32_t>(rng.NextBounded(5));
  SelVec rows;
  for (uint32_t i = 0; i < kRows; i += 2) rows.push_back(i);
  std::vector<uint32_t> slots(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) slots[i] = group[rows[i]];

  const size_t stride = 2;  // two aggregations interleaved
  std::vector<AggState> states(5 * stride);
  AccumulateColumn(states.data(), stride, 0, slots.data(), rows.data(),
                   rows.size(), metric.data());
  AccumulateConst(states.data(), stride, 1, slots.data(), rows.size(), 1.0);

  std::vector<AggState> expect(5 * stride);
  for (uint32_t row : rows) {
    expect[group[row] * stride + 0].Add(metric[row]);
    expect[group[row] * stride + 1].Add(1.0);
  }
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_TRUE(std::memcmp(&states[i].sum, &expect[i].sum,
                            sizeof(double)) == 0);
    EXPECT_EQ(states[i].count, expect[i].count);
    EXPECT_EQ(states[i].min, expect[i].min);
    EXPECT_EQ(states[i].max, expect[i].max);
  }
}

TEST(AggKernelTest, DenseAndGlobalVariants) {
  std::vector<double> metric = {1.5, -2.0, 3.25, 0.0, 8.0};
  std::vector<uint32_t> slot_col = {0, 1, 0, 2, 1};

  std::vector<AggState> by_slot(3);
  AccumulateColumnBySlotColumn(by_slot.data(), 1, 0, slot_col.data(), 0, 5,
                               metric.data());
  EXPECT_DOUBLE_EQ(by_slot[0].sum, 4.75);
  EXPECT_DOUBLE_EQ(by_slot[1].sum, 6.0);
  EXPECT_EQ(by_slot[2].count, 1);
  EXPECT_DOUBLE_EQ(by_slot[2].min, 0.0);

  AggState global;
  AccumulateColumnGlobalDense(global, 1, 3, metric.data());
  EXPECT_DOUBLE_EQ(global.sum, 1.25);  // rows 1..3
  EXPECT_EQ(global.count, 3);
  EXPECT_DOUBLE_EQ(global.min, -2.0);
  EXPECT_DOUBLE_EQ(global.max, 3.25);

  AggState counted;
  AccumulateConstGlobal(counted, 7, 1.0);
  EXPECT_EQ(counted.count, 7);
  EXPECT_DOUBLE_EQ(counted.sum, 7.0);

  AggState selected;
  SelVec rows = {0, 4};
  AccumulateColumnGlobal(selected, rows.data(), rows.size(), metric.data());
  EXPECT_DOUBLE_EQ(selected.sum, 9.5);
}

}  // namespace
}  // namespace scalewall::vec
