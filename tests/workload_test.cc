// Unit tests for the synthetic workload generators.

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/generators.h"

namespace scalewall::workload {
namespace {

TEST(MakeSchemaTest, ShapeMatchesArguments) {
  cubrick::TableSchema schema = MakeSchema(3, 100, 10, 2);
  ASSERT_EQ(schema.dimensions.size(), 3u);
  ASSERT_EQ(schema.metrics.size(), 2u);
  EXPECT_TRUE(schema.Validate().ok());
  EXPECT_EQ(schema.dimensions[0].num_buckets(), 10u);
}

TEST(AdEventsSchemaTest, IsValid) {
  cubrick::TableSchema schema = AdEventsSchema();
  EXPECT_TRUE(schema.Validate().ok());
  EXPECT_EQ(schema.DimensionIndex("day"), 0);
  EXPECT_EQ(schema.MetricIndex("spend"), 2);
}

TEST(TablePopulationTest, HeavyTailedSizes) {
  Rng rng(1);
  TablePopulationOptions options;
  options.num_tables = 2000;
  auto tables = GenerateTablePopulation(options, rng);
  ASSERT_EQ(tables.size(), 2000u);
  uint64_t max_rows = 0;
  int tiny = 0;
  for (const TableSpec& t : tables) {
    EXPECT_GE(t.rows, 1u);
    EXPECT_LE(t.rows, options.max_rows);
    max_rows = std::max(max_rows, t.rows);
    if (t.rows < 10000) ++tiny;
  }
  // Heavy tail: some tables near the cap, most small.
  EXPECT_GT(max_rows, 1000000u);
  EXPECT_GT(tiny, 1000);
  // Distinct names.
  EXPECT_EQ(tables[0].name, "tenant_table_0");
  EXPECT_EQ(tables[1999].name, "tenant_table_1999");
}

TEST(GenerateRowsTest, RowsRespectSchemaDomains) {
  cubrick::TableSchema schema = MakeSchema(3, 50, 5, 2);
  Rng rng(2);
  auto rows = GenerateRows(schema, 5000, rng);
  ASSERT_EQ(rows.size(), 5000u);
  for (const cubrick::Row& r : rows) {
    ASSERT_EQ(r.dims.size(), 3u);
    ASSERT_EQ(r.metrics.size(), 2u);
    for (uint32_t v : r.dims) EXPECT_LT(v, 50u);
    for (double m : r.metrics) EXPECT_GE(m, 0.0);
  }
}

TEST(GenerateRowsTest, ZipfSkewConcentratesValues) {
  cubrick::TableSchema schema = MakeSchema(1, 1000, 10, 1);
  Rng rng(3);
  RowGenOptions options;
  options.zipf_s = 1.2;
  auto rows = GenerateRows(schema, 20000, rng, options);
  int low = 0;
  for (const cubrick::Row& r : rows) {
    if (r.dims[0] < 10) ++low;
  }
  // Top-10 values take far more than the uniform 1%.
  EXPECT_GT(low, 2000);
}

TEST(GenerateRowsTest, RecencySkewFillsRecentBuckets) {
  cubrick::TableSchema schema = MakeSchema(1, 100, 10, 1);
  Rng rng(4);
  RowGenOptions options;
  options.recency_skew = true;
  auto rows = GenerateRows(schema, 20000, rng, options);
  int recent = 0;
  for (const cubrick::Row& r : rows) {
    if (r.dims[0] >= 90) ++recent;
  }
  EXPECT_GT(recent, 8000);  // ~half land in the top 10%
}

TEST(GenerateQueryTest, QueriesValidate) {
  cubrick::TableSchema schema = MakeSchema(4, 64, 8, 3);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    cubrick::Query q = GenerateQuery("t", schema, rng);
    EXPECT_EQ(q.table, "t");
    EXPECT_TRUE(q.Validate(schema).ok()) << i;
    EXPECT_GE(q.aggregations.size(), 1u);
  }
}

TEST(GenerateQueryTest, RecencyBiasTargetsRecentValues) {
  cubrick::TableSchema schema = MakeSchema(2, 100, 10, 1);
  Rng rng(6);
  QueryGenOptions options;
  options.filter_probability = 1.0;
  options.recency_bias = true;
  int recent_filters = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    cubrick::Query q = GenerateQuery("t", schema, rng, options);
    for (const cubrick::FilterRange& f : q.filters) {
      if (f.dimension != 0) continue;
      ++total;
      if (f.lo >= 80) ++recent_filters;
    }
  }
  EXPECT_EQ(recent_filters, total);
}

TEST(FixedProbeQueryTest, ShapeAndValidity) {
  cubrick::TableSchema schema = AdEventsSchema();
  cubrick::Query q = FixedProbeQuery("t", schema);
  EXPECT_TRUE(q.Validate(schema).ok());
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].dimension, 0);
  ASSERT_EQ(q.aggregations.size(), 1u);
  EXPECT_EQ(q.aggregations[0].op, cubrick::AggOp::kSum);
}

TEST(GeneratorDeterminismTest, SameSeedSameOutput) {
  cubrick::TableSchema schema = MakeSchema(2, 64, 8, 1);
  Rng rng1(9), rng2(9);
  auto rows1 = GenerateRows(schema, 100, rng1);
  auto rows2 = GenerateRows(schema, 100, rng2);
  for (size_t i = 0; i < rows1.size(); ++i) {
    EXPECT_EQ(rows1[i].dims, rows2[i].dims);
    EXPECT_EQ(rows1[i].metrics, rows2[i].metrics);
  }
}

}  // namespace
}  // namespace scalewall::workload
